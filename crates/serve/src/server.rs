//! The request runtime: supervised worker pool, admission, pipeline,
//! ladder.
//!
//! One `Server` owns a bounded queue, a versioned snapshot store, and
//! a pool of supervised worker threads. Each worker builds its own
//! engine replica from the current snapshot (the model is
//! single-threaded by design); breakers, the last-good cache, and the
//! popularity floor are shared. A request flows:
//!
//! ```text
//! submit ──bounded queue──> worker: ┌ encode ─ deadline? ─ user-encode ─ deadline? ─ rank ┐
//!    │ full? Rejected{depth}        │   └breaker per encoder component        └breaker    │
//!    └──────────────────────────────┴ rung failed? next ladder rung ... cached ... popularity
//! ```
//!
//! The pool is supervised (see [`crate::supervisor`]): a panicking
//! request fails into the ladder while the worker is respawned, a
//! wedged worker is retired by the heartbeat watchdog, and
//! [`Server::swap_snapshot`] flips the whole pool to a new engine
//! snapshot without shedding a request.

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::engine::{Component, ServeEngine};
use crate::queue::BoundedQueue;
use crate::shards::{ShardConfig, ShardHealth, ShardPool};
use crate::supervisor::{self, SuperCtl, SupervisorConfig, WorkerSlot};
use crate::swap::{Snapshots, SwapReport};
use crate::Tier;
use pmm_baselines::Popularity;
use pmm_data::world::Item;
use pmm_obs::counter as ctr;
use pmm_trace::{hist, Stage, StageClock, TraceId, Tracer};
use pmmrec::{PartialShards, RecommendError, Recommendation};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Full-coverage tag for answers that never went through the shard
/// pool (floor tiers, engines without a score row): zero of zero
/// shards missing, `is_partial() == false`, coverage 1.0.
const UNSHARDED: PartialShards = PartialShards { served: 0, total: 0 };

/// Server tuning.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads; `None` follows [`pmm_par::threads`] so the
    /// `--threads` / `PMM_THREADS` knob governs serving too.
    pub workers: Option<usize>,
    /// Hard queue capacity; beyond it, submissions shed.
    pub queue_capacity: usize,
    /// Default per-request deadline (queue wait included).
    pub deadline: Duration,
    /// How long an injected `slow` encoder fault stalls. Kept longer
    /// than `deadline` in chaos runs so slowness deterministically
    /// becomes a deadline miss.
    pub slow_fault: Duration,
    /// How long an injected `stall` worker fault freezes the worker
    /// without heartbeats. Kept longer than the wedge threshold in
    /// chaos runs so the watchdog deterministically fires.
    pub stall_fault: Duration,
    /// Breaker tuning, shared by all components.
    pub breaker: BreakerConfig,
    /// Supervision tuning: restart budgets, wedge threshold, retry
    /// budget.
    pub supervisor: SupervisorConfig,
    /// Scatter-gather tuning: shard count (shard-per-core by default)
    /// and the per-shard quarantine rebuild budget.
    pub shards: ShardConfig,
    /// Start with consumers paused (deterministic overflow tests);
    /// release with [`Server::set_paused`].
    pub start_paused: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: None,
            queue_capacity: 64,
            deadline: Duration::from_millis(250),
            slow_fault: Duration::from_millis(400),
            stall_fault: Duration::from_secs(2),
            breaker: BreakerConfig::default(),
            supervisor: SupervisorConfig::default(),
            shards: ShardConfig::default(),
            start_paused: false,
        }
    }
}

/// One recommendation request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller identity, keyed by the last-good cache.
    pub user: u64,
    /// Interaction history, most recent last.
    pub prefix: Vec<usize>,
    /// How many items to return.
    pub k: usize,
    /// Drop items already in the prefix.
    pub exclude_seen: bool,
    /// Per-request deadline override.
    pub deadline: Option<Duration>,
}

impl Request {
    /// A request with the server's default deadline and
    /// `exclude_seen = false`.
    pub fn new(user: u64, prefix: Vec<usize>, k: usize) -> Request {
        Request { user, prefix, k, exclude_seen: false, deadline: None }
    }
}

/// A served answer, tagged with the rung that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Monotonic request id assigned at submission.
    pub id: u64,
    /// The request's trace id: every `"ev":"trace"` event carrying it
    /// belongs to this request's causal chain.
    pub trace: TraceId,
    /// Echo of [`Request::user`].
    pub user: u64,
    /// The degradation rung that answered.
    pub tier: Tier,
    /// The snapshot epoch of the engine that answered (floor-tier
    /// answers carry the epoch current when they were served), so
    /// hot-swap tests can prove which snapshot a response came from.
    pub epoch: u64,
    /// Shard coverage of the answer: how many catalog shards the
    /// scatter-gather actually served out of how many exist.
    /// `is_partial()` means quarantined/given-up shards were skipped
    /// and the ranking covered only part of the catalog; `0/0` tags
    /// answers that never went through the shard pool (floor tiers).
    pub shards: PartialShards,
    /// The ranked items.
    pub items: Vec<Recommendation>,
}

/// Why a request was not served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The queue was full; the request was shed at admission.
    Rejected {
        /// Queue depth observed at rejection.
        queue_depth: usize,
    },
    /// The deadline expired; `stage` names the pipeline boundary where
    /// the request was cancelled (`"wedged"` means the worker running
    /// it stalled and the watchdog answered).
    DeadlineExceeded {
        /// `"queue"`, `"encode"`, `"user_encode"`, `"rank"`, or
        /// `"wedged"`.
        stage: &'static str,
    },
    /// The request was malformed; nothing was enqueued.
    BadRequest(RecommendError),
    /// The server shut down before the request completed.
    Closed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected { queue_depth } => {
                write!(f, "request shed: queue full at depth {queue_depth}")
            }
            ServeError::DeadlineExceeded { stage } => {
                write!(f, "deadline exceeded at the {stage} stage")
            }
            ServeError::BadRequest(e) => write!(f, "bad request: {e}"),
            ServeError::Closed => write!(f, "server closed"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Awaits one submitted request's outcome.
#[derive(Debug)]
pub struct ResponseHandle {
    /// The id assigned at submission.
    pub id: u64,
    /// The trace id minted at enqueue.
    pub trace: TraceId,
    rx: mpsc::Receiver<Result<Response, ServeError>>,
}

impl ResponseHandle {
    /// Blocks until the request completes (or the server closes).
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }
}

pub(crate) struct Job {
    pub(crate) id: u64,
    pub(crate) trace: TraceId,
    pub(crate) request: Request,
    pub(crate) enqueued: Instant,
    pub(crate) deadline: Instant,
    pub(crate) reply: mpsc::Sender<Result<Response, ServeError>>,
    /// Times this job has been requeued after a worker panic.
    pub(crate) retries: u32,
    /// Trace sequence number the next handler resumes the chain at
    /// (advanced by the retry path so the chain stays ordered).
    pub(crate) resume_seq: u32,
}

/// The shared streamed-item delta log. Items appended by
/// [`Server::ingest`] live here (indexed by an *absolute* position
/// that survives folds) until [`Server::fold_delta`] publishes a base
/// snapshot containing them and drains the folded prefix. Workers
/// track the absolute position they have applied to their replica and
/// catch up between requests.
pub(crate) struct DeltaState {
    /// Unfolded items, oldest first.
    pub(crate) items: Vec<Item>,
    /// Absolute index of `items[0]`: everything below it was folded
    /// into a published base snapshot and dropped from the log.
    pub(crate) start: u64,
}

impl DeltaState {
    /// Absolute index one past the newest ingested item.
    pub(crate) fn total(&self) -> u64 {
        self.start + self.items.len() as u64
    }

    /// The items at or past absolute position `applied`, cloned out
    /// so the caller can apply them outside the lock.
    pub(crate) fn pending(&self, applied: u64) -> Vec<Item> {
        let from = (applied.max(self.start) - self.start) as usize;
        self.items.get(from..).map(<[Item]>::to_vec).unwrap_or_default()
    }
}

pub(crate) struct Shared {
    pub(crate) queue: BoundedQueue<Job>,
    pub(crate) breakers: [Mutex<CircuitBreaker>; 3],
    pub(crate) cache: Mutex<HashMap<u64, Vec<Recommendation>>>,
    pub(crate) popularity: Popularity,
    pub(crate) shards: ShardPool,
    pub(crate) delta: Mutex<DeltaState>,
    pub(crate) slow_fault: Duration,
    pub(crate) stall_fault: Duration,
}

/// Locks shared serving state, recovering from poison: breaker and
/// cache values are valid at every instruction boundary, and a worker
/// panicking mid-request must not take every other worker down.
pub(crate) fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn breaker_of(shared: &Shared, c: Component) -> &Mutex<CircuitBreaker> {
    let idx = match c {
        Component::TextEncoder => 0,
        Component::VisionEncoder => 1,
        Component::Ranker => 2,
    };
    // pmm-audit: allow(hot-index) — idx is 0..=2 by the match above, and the array has 3 slots
    &shared.breakers[idx]
}

/// Who is allowed to send a request's reply, plus the snapshot epoch
/// the answer is tagged with. `owner: Some((slot, gen))` means the
/// reply must be claimed from the slot's in-flight cell (so a wedge
/// takeover and the worker cannot both answer); `None` means the
/// caller already owns the reply (supervisor drain, panic recovery).
pub(crate) struct ReplyCtx<'a> {
    pub(crate) owner: Option<(&'a WorkerSlot, u64)>,
    pub(crate) epoch: u64,
}

impl ReplyCtx<'_> {
    /// Claim the exclusive right to reply; `false` means someone else
    /// (the watchdog) already answered and every counter was already
    /// charged.
    fn claim(&self) -> bool {
        match self.owner {
            None => true,
            Some((slot, gen)) => slot.claim_if(gen),
        }
    }
}

/// The serving runtime. Dropping it closes the queue and joins the
/// supervisor and workers (draining accepted requests first).
pub struct Server<E: ServeEngine + 'static> {
    shared: Arc<Shared>,
    snaps: Arc<Snapshots<E>>,
    ctl: Arc<SuperCtl>,
    supervisor: Option<JoinHandle<()>>,
    next_id: AtomicU64,
    default_deadline: Duration,
}

impl<E: ServeEngine + 'static> Server<E> {
    /// Starts the supervised worker pool. `factory` builds one engine
    /// per worker thread — engines are never shared, so the model's
    /// single-threaded internals are safe; build replicas from the
    /// same seed for bit-identical results across workers.
    /// `popularity` is the ladder's always-available floor.
    pub fn start<F>(cfg: ServerConfig, factory: F, popularity: Popularity) -> Server<E>
    where
        F: Fn() -> E + Send + Sync + 'static,
    {
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_capacity),
            breakers: [
                Mutex::new(CircuitBreaker::new(cfg.breaker)),
                Mutex::new(CircuitBreaker::new(cfg.breaker)),
                Mutex::new(CircuitBreaker::new(cfg.breaker)),
            ],
            cache: Mutex::new(HashMap::new()),
            popularity,
            shards: ShardPool::new(cfg.shards),
            delta: Mutex::new(DeltaState { items: Vec::new(), start: 0 }),
            slow_fault: cfg.slow_fault,
            stall_fault: cfg.stall_fault,
        });
        if cfg.start_paused {
            shared.queue.set_paused(true);
        }
        let n_workers = cfg.workers.unwrap_or_else(pmm_par::threads).max(1);
        let snaps = Arc::new(Snapshots::new(Arc::new(factory)));
        let (ctl, supervisor) =
            supervisor::boot(cfg.supervisor, cfg.deadline, &shared, &snaps, n_workers);
        Server {
            shared,
            snaps,
            ctl,
            supervisor: Some(supervisor),
            next_id: AtomicU64::new(0),
            default_deadline: cfg.deadline,
        }
    }

    /// Enqueues a request. Never blocks: a full queue sheds with
    /// [`ServeError::Rejected`], a malformed request fails fast with
    /// [`ServeError::BadRequest`].
    pub fn submit(&self, request: Request) -> Result<ResponseHandle, ServeError> {
        ctr::SERVE_REQUESTS.add(1);
        if request.prefix.is_empty() {
            return Err(ServeError::BadRequest(RecommendError::EmptyPrefix));
        }
        let mut tracer = Tracer::start();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let enqueued = Instant::now();
        let deadline = enqueued + request.deadline.unwrap_or(self.default_deadline);
        let (tx, rx) = mpsc::channel();
        let job = Job {
            id,
            trace: tracer.id(),
            request,
            enqueued,
            deadline,
            reply: tx,
            retries: 0,
            resume_seq: 1,
        };
        match self.shared.queue.try_push(job) {
            Ok(depth) => {
                self.ctl.note_accepted();
                if pmm_obs::enabled() {
                    tracer.instant(Stage::Enqueue, "accepted", &format!("depth={depth}"));
                }
                Ok(ResponseHandle { id, trace: tracer.id(), rx })
            }
            Err(queue_depth) => {
                ctr::SERVE_SHED.add(1);
                if pmm_obs::enabled() {
                    tracer.instant(Stage::Enqueue, "shed", &format!("depth={queue_depth}"));
                }
                Err(ServeError::Rejected { queue_depth })
            }
        }
    }

    /// Submit and wait: the one-call convenience path.
    pub fn call(&self, request: Request) -> Result<Response, ServeError> {
        self.submit(request)?.wait()
    }

    /// Publish a new engine snapshot and wait for the pool to adopt
    /// it: the factory is flipped atomically, every worker rebuilds
    /// its replica from the new snapshot between requests (in-flight
    /// requests finish on the engine — and epoch tag — they started
    /// with), and abandoned slots are revived with a fresh restart
    /// budget. No request is shed on account of the swap: the queue
    /// keeps accepting throughout. Blocks only the calling thread,
    /// never serving.
    pub fn swap_snapshot<F>(&self, factory: F) -> SwapReport
    where
        F: Fn() -> E + Send + Sync + 'static,
    {
        // A plain swap replaces the base without touching the delta
        // log: the new snapshot inherits the current fold cut.
        let cut = self.snaps.delta_cut();
        self.swap_with_cut(Arc::new(factory), cut)
    }

    fn swap_with_cut(&self, factory: Arc<dyn Fn() -> E + Send + Sync>, delta_cut: u64) -> SwapReport {
        let start = Instant::now();
        let epoch = self.snaps.publish(factory, delta_cut);
        ctr::SERVE_SWAPS.add(1);
        // A new snapshot is new code as far as crash loops are
        // concerned: abandoned slots and quarantined shards both get a
        // fresh budget.
        self.ctl.revive();
        self.shared.shards.revive();
        // Wake idle workers so they notice the epoch without waiting
        // for traffic.
        self.shared.queue.poke();
        loop {
            if self.ctl.shutting_down() {
                break;
            }
            let pending = self
                .ctl
                .slots
                .iter()
                .any(|s| !s.given_up() && s.engine_epoch() != epoch);
            if !pending {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let drain = start.elapsed();
        ctr::SERVE_SWAP_DRAIN_NS.add(drain.as_nanos() as u64);
        let mut tracer = Tracer::start();
        tracer.observe(Stage::Swap, drain, "ok", &format!("epoch={epoch}"));
        SwapReport {
            epoch,
            drain,
            workers: self.ctl.slots.iter().filter(|s| s.engine_epoch() == epoch).count(),
            given_up: self.ctl.slots.iter().filter(|s| s.given_up()).count(),
        }
    }

    /// The currently published snapshot epoch.
    pub fn snapshot_epoch(&self) -> u64 {
        self.snaps.epoch()
    }

    /// Appends streamed items to the shared delta log. Workers apply
    /// them to their replicas between requests, so the very next
    /// request each worker serves already ranks over base + delta.
    /// Returns the absolute delta position after the append (the
    /// total number of items ever ingested). Call this *after* the
    /// items are durable in the WAL — the log is the in-memory view,
    /// `pmm_ingest::Wal` is the crash-safe one.
    pub fn ingest(&self, items: Vec<Item>) -> u64 {
        if items.is_empty() {
            return lock_clean(&self.shared.delta).total();
        }
        let start = Instant::now();
        let n = items.len();
        let total = {
            let mut delta = lock_clean(&self.shared.delta);
            delta.items.extend(items);
            delta.total()
        };
        ctr::INGEST_ITEMS.add(n as u64);
        let mut tracer = Tracer::start();
        tracer.observe(Stage::Ingest, start.elapsed(), "ok", &format!("items={n}"));
        // Wake idle workers so they fold the delta into their replicas
        // without waiting for traffic.
        self.shared.queue.poke();
        total
    }

    /// Items currently in the delta log (ingested but not yet folded
    /// into a published base snapshot).
    pub fn delta_len(&self) -> usize {
        lock_clean(&self.shared.delta).items.len()
    }

    /// Folds the delta into a new base snapshot: `factory` must build
    /// an engine whose base catalog already contains every delta item
    /// ingested so far (typically a cold build over base ∪ delta).
    /// Publishes it with the fold cut recorded, waits for every live
    /// worker to adopt it — zero requests shed, same drain machinery
    /// as [`Server::swap_snapshot`] — then retires the folded prefix
    /// from the log. Items ingested *during* the fold stay in the log
    /// and keep being applied as deltas on top of the new base.
    pub fn fold_delta<F>(&self, factory: F) -> SwapReport
    where
        F: Fn() -> E + Send + Sync + 'static,
    {
        let cut = lock_clean(&self.shared.delta).total();
        let report = self.swap_with_cut(Arc::new(factory), cut);
        ctr::INGEST_FOLDS.add(1);
        // Every live worker is on the new epoch now, with
        // `applied >= cut` — the folded prefix can never be re-applied,
        // so it is safe to drop.
        let mut delta = lock_clean(&self.shared.delta);
        let drop_n = ((cut - delta.start) as usize).min(delta.items.len());
        delta.items.drain(..drop_n);
        delta.start = cut;
        report
    }

    /// Per-shard health of the scatter-gather pool, shard order.
    pub fn shard_health(&self) -> Vec<ShardHealth> {
        self.shared.shards.health()
    }

    /// Number of catalog shards the scatter-gather ranks over.
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// Whether every worker slot has exhausted its restart budget and
    /// the supervisor is serving the model-free floor directly. A
    /// [`Server::swap_snapshot`] revives a degraded pool.
    pub fn degraded(&self) -> bool {
        self.ctl.degraded()
    }

    /// Lifetime restart count per worker slot.
    pub fn worker_restarts(&self) -> Vec<u64> {
        self.ctl.slots.iter().map(WorkerSlot::restarts).collect()
    }

    /// Pauses or releases the worker side of the queue (producers are
    /// unaffected) — the deterministic overflow-test switch.
    pub fn set_paused(&self, paused: bool) {
        self.shared.queue.set_paused(paused);
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// A component breaker's current state.
    pub fn breaker_state(&self, c: Component) -> BreakerState {
        lock_clean(breaker_of(&self.shared, c)).state()
    }

    /// A component breaker's lifetime trip count.
    pub fn breaker_trips(&self, c: Component) -> u64 {
        lock_clean(breaker_of(&self.shared, c)).trips()
    }

    /// Closes the queue and joins the supervisor and workers after
    /// they drain the accepted backlog.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        // Stop the supervisor first so nothing respawns into the
        // closing pool, then close the queue so workers drain and
        // exit.
        self.ctl.begin_shutdown();
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        self.shared.queue.close();
        self.ctl.join_workers();
        // An outage still open now would otherwise never be charged:
        // flush open time into the SLO counter at the very end.
        for b in &self.shared.breakers {
            lock_clean(b).flush_open_time();
        }
    }
}

impl<E: ServeEngine + 'static> Drop for Server<E> {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn expired(deadline: Instant) -> bool {
    Instant::now() >= deadline
}

fn deadline_miss(
    ctx: &ReplyCtx<'_>,
    tracer: &mut Tracer,
    request_clock: StageClock,
    job: &Job,
    stage: &'static str,
) {
    if !ctx.claim() {
        return;
    }
    ctr::SERVE_DEADLINE_MISSES.add(1);
    hist::H_TOTAL.observe(job.enqueued.elapsed());
    tracer.instant(Stage::Respond, "deadline_miss", stage);
    tracer.finish(request_clock, "deadline_miss", stage);
    let _ = job.reply.send(Err(ServeError::DeadlineExceeded { stage }));
}

#[allow(clippy::too_many_arguments)]
fn respond(
    shared: &Shared,
    ctx: &ReplyCtx<'_>,
    tracer: &mut Tracer,
    request_clock: StageClock,
    job: &Job,
    tier: Tier,
    shards: PartialShards,
    items: Vec<Recommendation>,
) {
    if !ctx.claim() {
        return;
    }
    match tier {
        Tier::Full => ctr::SERVE_TIER_FULL.add(1),
        Tier::TextOnly | Tier::VisionOnly => ctr::SERVE_TIER_SINGLE.add(1),
        Tier::CachedTopK => ctr::SERVE_TIER_CACHED.add(1),
        Tier::Popularity => ctr::SERVE_TIER_POP.add(1),
    }
    if matches!(tier, Tier::Full | Tier::TextOnly | Tier::VisionOnly) {
        lock_clean(&shared.cache).insert(job.request.user, items.clone());
    }
    hist::H_TOTAL.observe(job.enqueued.elapsed());
    tracer.instant(Stage::Respond, "ok", tier.label());
    tracer.finish(request_clock, "ok", tier.label());
    let _ = job.reply.send(Ok(Response {
        id: job.id,
        trace: job.trace,
        user: job.request.user,
        tier,
        epoch: ctx.epoch,
        shards,
        items,
    }));
}

/// The model-free tail of the ladder: last deadline check, then the
/// cached top-k, then the popularity floor. Shared by the worker's
/// ladder exhaustion, the panic-recovery path, and the degraded
/// supervisor drain — it never touches a model, so it is safe from
/// any reply owner.
pub(crate) fn respond_floor(
    shared: &Shared,
    ctx: &ReplyCtx<'_>,
    tracer: &mut Tracer,
    request_clock: StageClock,
    job: &Job,
) {
    // Model-free fallbacks: never compute, so no deadline risk beyond
    // this final check.
    if expired(job.deadline) {
        deadline_miss(ctx, tracer, request_clock, job, "rank");
        return;
    }
    let req = &job.request;
    tracer.instant(Stage::Tier, "attempt", Tier::CachedTopK.label());
    let cached = lock_clean(&shared.cache).get(&req.user).cloned();
    if let Some(mut items) = cached {
        items.truncate(req.k);
        respond(shared, ctx, tracer, request_clock, job, Tier::CachedTopK, UNSHARDED, items);
        return;
    }
    tracer.instant(Stage::Tier, "attempt", Tier::Popularity.label());
    let exclude: &[usize] = if req.exclude_seen { &req.prefix } else { &[] };
    let items = shared
        .popularity
        .top_k(req.k, exclude)
        .into_iter()
        .map(|(item, count)| Recommendation { item, score: count as f32 })
        .collect();
    respond(shared, ctx, tracer, request_clock, job, Tier::Popularity, UNSHARDED, items);
}

/// Runs one request through the ladder. Every exit path sends exactly
/// one reply (or relinquishes it to the watchdog via the claim
/// protocol). The worker resumes the request's trace chain at the
/// job's `resume_seq` (the submitting side emitted the seq-0 enqueue
/// event; a retry advances it): every timed stage runs inside a
/// [`Tracer::begin`]/[`Tracer::finish`] pair so the stage histogram,
/// trace event, and obs span stay in lockstep, and breaker denials
/// and tier transitions land as instant events. The worker stamps its
/// heartbeat at every stage boundary; the injected `panic`/`stall`
/// worker faults fire between admission and the ladder, inside the
/// supervisor's `catch_unwind` region.
pub(crate) fn attempt_request<E: ServeEngine>(
    engine: &E,
    epoch: u64,
    shared: &Shared,
    slot: &WorkerSlot,
    gen: u64,
    job: &Job,
    tracer: &mut Tracer,
) {
    let ctx = ReplyCtx { owner: Some((slot, gen)), epoch };
    let request_clock = tracer.begin(Stage::Request);
    if job.retries == 0 {
        tracer.observe(Stage::Queue, job.enqueued.elapsed(), "ok", "");
    } else {
        tracer.instant(Stage::Queue, "requeued", "retry");
    }
    if expired(job.deadline) {
        deadline_miss(&ctx, tracer, request_clock, job, "queue");
        return;
    }

    match pmm_fault::trip_worker() {
        Some(pmm_fault::WorkerFault::Panic) => {
            // pmm-audit: allow(hot-panic) — deterministic fault-injection point; the supervisor's catch_unwind is the feature under test
            panic!("injected worker panic (panic@N)");
        }
        Some(pmm_fault::WorkerFault::Stall) => {
            // Freeze without heartbeats: the wedge the watchdog hunts.
            std::thread::sleep(shared.stall_fault);
            if slot.retired(gen) {
                // The watchdog declared us wedged and already answered
                // (deadline miss) — exit without touching anything.
                return;
            }
            slot.stamp();
        }
        None => {}
    }

    let req = &job.request;
    'ladder: for tier in engine.ladder() {
        tracer.instant(Stage::Tier, "attempt", tier.label());
        let components = engine.components(tier);
        // Admission: every encoder component on this rung must admit.
        // Components already admitted when a later one denies get
        // released (their probe slot is returned unreported).
        let mut admitted = Vec::new();
        for &c in &components {
            if lock_clean(breaker_of(shared, c)).admit() {
                admitted.push(c);
            } else {
                tracer.instant(Stage::Breaker, "deny", c.label());
                for &a in &admitted {
                    lock_clean(breaker_of(shared, a)).release();
                }
                continue 'ladder;
            }
        }

        // Stage 1: encode.
        let clock = tracer.begin(Stage::Encode);
        let encoded = match engine.encode(tier, shared.slow_fault) {
            Err(failed) => {
                tracer.finish(clock, "err", failed.label());
                for &c in &components {
                    let mut b = lock_clean(breaker_of(shared, c));
                    // Only the component that errored gets an outcome;
                    // siblings the abort skipped return their slot.
                    if c == failed {
                        b.record(false);
                    } else {
                        b.release();
                    }
                }
                continue 'ladder;
            }
            Ok(e) => {
                tracer.finish(clock, "ok", tier.label());
                e
            }
        };
        slot.stamp();
        if expired(job.deadline) {
            // Slowness is charged to the components that stalled; the
            // rest completed honestly.
            for &c in &components {
                lock_clean(breaker_of(shared, c)).record(!encoded.slept.contains(&c));
            }
            deadline_miss(&ctx, tracer, request_clock, job, "encode");
            return;
        }
        for &c in &components {
            lock_clean(breaker_of(shared, c)).record(true);
        }

        // Stages 2+3 share the ranking-path breaker.
        if !lock_clean(breaker_of(shared, Component::Ranker)).admit() {
            tracer.instant(Stage::Breaker, "deny", Component::Ranker.label());
            break 'ladder;
        }

        // Stage 2: user encoding.
        let clock = tracer.begin(Stage::UserEncode);
        let user = match engine.user_encode(&encoded.catalog, &req.prefix) {
            Err(_) => {
                tracer.finish(clock, "err", tier.label());
                lock_clean(breaker_of(shared, Component::Ranker)).record(false);
                break 'ladder;
            }
            Ok(u) => {
                tracer.finish(clock, "ok", tier.label());
                u
            }
        };
        slot.stamp();
        if expired(job.deadline) {
            // The ranking path itself was healthy; the budget ran out.
            lock_clean(breaker_of(shared, Component::Ranker)).record(true);
            deadline_miss(&ctx, tracer, request_clock, job, "user_encode");
            return;
        }

        // Stage 3: rank. Engines that expose an exhaustive score row
        // rank through the sharded scatter-gather (bit-identical to
        // the exhaustive sort, partial under shard quarantine); the
        // rest rank directly and are tagged unsharded.
        let clock = tracer.begin(Stage::Rank);
        let (items, coverage) = match engine.scores(tier, &encoded.catalog, &user) {
            Some(scores) => {
                shared.shards.rank(&scores, &req.prefix, req.k, req.exclude_seen, &clock, tracer)
            }
            None => (
                engine.rank(tier, &encoded.catalog, &user, &req.prefix, req.k, req.exclude_seen),
                UNSHARDED,
            ),
        };
        tracer.finish(clock, "ok", tier.label());
        slot.stamp();
        lock_clean(breaker_of(shared, Component::Ranker)).record(true);
        respond(shared, &ctx, tracer, request_clock, job, tier, coverage, items);
        return;
    }

    respond_floor(shared, &ctx, tracer, request_clock, job);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Encoded;
    use pmm_tensor::Tensor;

    /// A model-free engine with the same fault-gate behaviour as the
    /// real one: catalogue scores descend with item id and carry a
    /// per-rung offset so tests can tell tiers apart by score.
    /// `sharded` opts into the score-row path (scatter-gather);
    /// `delta` counts items streamed in via `apply_delta`, growing the
    /// catalogue so ingest tests can observe base + delta serving.
    struct StubEngine {
        n: usize,
        rungs: Vec<Tier>,
        sharded: bool,
        delta: usize,
    }

    impl StubEngine {
        fn full() -> StubEngine {
            StubEngine {
                n: 10,
                rungs: vec![Tier::Full, Tier::TextOnly, Tier::VisionOnly],
                sharded: false,
                delta: 0,
            }
        }

        fn sharded() -> StubEngine {
            StubEngine { sharded: true, ..StubEngine::full() }
        }
    }

    fn tier_offset(tier: Tier) -> f32 {
        match tier {
            Tier::Full => 0.0,
            Tier::TextOnly => 1000.0,
            Tier::VisionOnly => 2000.0,
            _ => 0.0,
        }
    }

    impl ServeEngine for StubEngine {
        fn n_items(&self) -> usize {
            self.n + self.delta
        }

        fn ladder(&self) -> Vec<Tier> {
            self.rungs.clone()
        }

        fn components(&self, tier: Tier) -> Vec<Component> {
            match tier {
                Tier::Full => vec![Component::TextEncoder, Component::VisionEncoder],
                Tier::TextOnly => vec![Component::TextEncoder],
                Tier::VisionOnly => vec![Component::VisionEncoder],
                _ => Vec::new(),
            }
        }

        fn encode(&self, tier: Tier, slow_fault: Duration) -> Result<Encoded, Component> {
            let mut slept = Vec::new();
            for component in self.components(tier) {
                match pmm_fault::trip_encode() {
                    Some(pmm_fault::EncodeFault::Err) => return Err(component),
                    Some(pmm_fault::EncodeFault::Slow) => {
                        std::thread::sleep(slow_fault);
                        slept.push(component);
                    }
                    None => {}
                }
            }
            let off = tier_offset(tier);
            let total = self.n_items();
            let data: Vec<f32> = (0..total).map(|i| off + (total - i) as f32).collect();
            let catalog = Tensor::from_vec(data, &[total, 1]).unwrap();
            Ok(Encoded { catalog, slept })
        }

        fn user_encode(
            &self,
            _catalog: &Tensor,
            prefix: &[usize],
        ) -> Result<Tensor, RecommendError> {
            if prefix.is_empty() {
                return Err(RecommendError::EmptyPrefix);
            }
            Ok(Tensor::from_vec(vec![1.0], &[1, 1]).unwrap())
        }

        fn rank(
            &self,
            _tier: Tier,
            catalog: &Tensor,
            user: &Tensor,
            prefix: &[usize],
            k: usize,
            exclude_seen: bool,
        ) -> Vec<Recommendation> {
            let u = user.data()[0];
            let mut all: Vec<Recommendation> = catalog
                .data()
                .iter()
                .enumerate()
                .map(|(item, &s)| Recommendation { item, score: s * u })
                .filter(|r| !exclude_seen || !prefix.contains(&r.item))
                .collect();
            all.sort_by(|a, b| b.score.total_cmp(&a.score));
            all.truncate(k);
            all
        }

        fn scores(&self, _tier: Tier, catalog: &Tensor, user: &Tensor) -> Option<Vec<f32>> {
            if !self.sharded {
                return None;
            }
            let u = user.data()[0];
            Some(catalog.data().iter().map(|&s| s * u).collect())
        }

        fn apply_delta(&mut self, items: &[Item]) {
            self.delta += items.len();
        }
    }

    fn pop() -> Popularity {
        Popularity::from_sequences(10, &[vec![5, 5, 5, 3, 3], vec![5, 1]])
    }

    fn cfg() -> ServerConfig {
        ServerConfig {
            workers: Some(1),
            deadline: Duration::from_secs(10),
            breaker: BreakerConfig { window: 4, trip_failures: 1, cooldown_denials: 1000 },
            ..ServerConfig::default()
        }
    }

    /// Supervision tuned for tests: fast watchdog, fast respawns.
    fn fast_super() -> SupervisorConfig {
        SupervisorConfig {
            restart_backoff: Duration::from_millis(1),
            watchdog_interval: Duration::from_millis(2),
            ..SupervisorConfig::default()
        }
    }

    /// Polls until `f` holds or ~2s elapse; the supervisor's respawn
    /// and watchdog paths are asynchronous by design.
    fn eventually(mut f: impl FnMut() -> bool) -> bool {
        for _ in 0..2000 {
            if f() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        false
    }

    #[test]
    fn healthy_requests_serve_the_full_tier() {
        let _fg = pmm_fault::test_guard();
        let server = Server::start(cfg(), StubEngine::full, pop());
        let resp = server.call(Request::new(1, vec![0, 1], 3)).unwrap();
        assert_eq!(resp.tier, Tier::Full);
        assert_eq!(resp.epoch, 0, "boot snapshot is epoch 0");
        assert_eq!(resp.items.len(), 3);
        // Full-tier scores carry no offset and descend with item id.
        assert_eq!(resp.items[0], Recommendation { item: 0, score: 10.0 });
        assert_eq!(resp.items[1], Recommendation { item: 1, score: 9.0 });
    }

    #[test]
    fn empty_prefix_is_rejected_at_submission() {
        let _fg = pmm_fault::test_guard();
        let server = Server::start(cfg(), StubEngine::full, pop());
        let err = server.submit(Request::new(1, vec![], 3)).unwrap_err();
        assert_eq!(err, ServeError::BadRequest(RecommendError::EmptyPrefix));
    }

    #[test]
    fn full_queue_sheds_with_observed_depth() {
        let _fg = pmm_fault::test_guard();
        let server = Server::start(
            ServerConfig { queue_capacity: 2, start_paused: true, ..cfg() },
            StubEngine::full,
            pop(),
        );
        let h1 = server.submit(Request::new(1, vec![0], 2)).unwrap();
        let h2 = server.submit(Request::new(2, vec![0], 2)).unwrap();
        let shed = server.submit(Request::new(3, vec![0], 2)).unwrap_err();
        assert_eq!(shed, ServeError::Rejected { queue_depth: 2 });
        // Releasing the pause drains the accepted backlog untouched.
        server.set_paused(false);
        assert!(h1.wait().is_ok());
        assert!(h2.wait().is_ok());
    }

    #[test]
    fn encoder_errors_walk_down_the_ladder() {
        let _fg = pmm_fault::test_guard();
        pmm_fault::install(pmm_fault::FaultPlan::parse("err@0").unwrap());
        let server = Server::start(cfg(), StubEngine::full, pop());
        // Full: the text gate errs -> text breaker trips open; TextOnly
        // is denied admission; VisionOnly serves.
        let resp = server.call(Request::new(1, vec![0, 1], 3)).unwrap();
        pmm_fault::clear();
        assert_eq!(resp.tier, Tier::VisionOnly);
        assert!(resp.items[0].score >= 2000.0, "vision-rung scores carry the offset");
        assert_eq!(server.breaker_state(Component::TextEncoder), BreakerState::Open);
        assert_eq!(server.breaker_trips(Component::TextEncoder), 1);
        assert_eq!(server.breaker_state(Component::VisionEncoder), BreakerState::Closed);
    }

    #[test]
    fn slow_fault_cancels_at_the_encode_boundary() {
        let _fg = pmm_fault::test_guard();
        pmm_fault::install(pmm_fault::FaultPlan::parse("slow@0").unwrap());
        let server = Server::start(
            ServerConfig {
                deadline: Duration::from_millis(30),
                slow_fault: Duration::from_millis(120),
                ..cfg()
            },
            StubEngine::full,
            pop(),
        );
        let err = server.call(Request::new(1, vec![0, 1], 3)).unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded { stage: "encode" });
        // The stalled component was charged with a timeout failure; the
        // healthy sibling was not.
        assert_eq!(server.breaker_state(Component::TextEncoder), BreakerState::Open);
        assert_eq!(server.breaker_state(Component::VisionEncoder), BreakerState::Closed);
        // The next request routes around the tripped text path.
        let resp = server.call(Request::new(1, vec![0, 1], 3)).unwrap();
        pmm_fault::clear();
        assert_eq!(resp.tier, Tier::VisionOnly);
    }

    #[test]
    fn cache_then_popularity_when_every_model_path_is_down() {
        let _fg = pmm_fault::test_guard();
        // Request 0 is healthy (occurrences 0-1); request 1 errs on
        // both surviving gates (occurrences 2-3), tripping both
        // encoder breakers.
        pmm_fault::install(pmm_fault::FaultPlan::parse("err@2,err@3").unwrap());
        let server = Server::start(cfg(), StubEngine::full, pop());
        let healthy = server.call(Request::new(7, vec![0, 1], 3)).unwrap();
        assert_eq!(healthy.tier, Tier::Full);

        // Known user: the last-good cache answers.
        let cached = server.call(Request::new(7, vec![0, 1], 2)).unwrap();
        assert_eq!(cached.tier, Tier::CachedTopK);
        assert_eq!(cached.items, healthy.items[..2].to_vec(), "cache replays the last good top-k");

        // Unknown user with everything down: the popularity floor.
        let cold = server.call(Request::new(99, vec![4], 3)).unwrap();
        pmm_fault::clear();
        assert_eq!(cold.tier, Tier::Popularity);
        let ids: Vec<usize> = cold.items.iter().map(|r| r.item).collect();
        assert_eq!(ids, vec![5, 3, 1], "global best-sellers in count order");
        assert_eq!(server.breaker_state(Component::TextEncoder), BreakerState::Open);
        assert_eq!(server.breaker_state(Component::VisionEncoder), BreakerState::Open);
    }

    #[test]
    fn breaker_heals_through_a_half_open_probe() {
        let _fg = pmm_fault::test_guard();
        pmm_fault::install(pmm_fault::FaultPlan::parse("err@0").unwrap());
        let server = Server::start(
            ServerConfig {
                breaker: BreakerConfig { window: 4, trip_failures: 1, cooldown_denials: 3 },
                ..cfg()
            },
            StubEngine::full,
            pop(),
        );
        // Trip the text breaker: the Full rung errs, the TextOnly rung
        // is denied (denial 1), VisionOnly serves.
        let first = server.call(Request::new(1, vec![0], 2)).unwrap();
        assert_eq!(first.tier, Tier::VisionOnly);
        assert_eq!(server.breaker_state(Component::TextEncoder), BreakerState::Open);
        // Next request: the Full-rung admission is denial 2, then the
        // TextOnly-rung admission reaches the cooldown and becomes the
        // half-open probe — it succeeds and closes the breaker.
        let probe = server.call(Request::new(1, vec![0], 2)).unwrap();
        assert_eq!(probe.tier, Tier::TextOnly, "the probe serves the text rung");
        assert_eq!(server.breaker_state(Component::TextEncoder), BreakerState::Closed);
        // Full service is restored.
        let healed = server.call(Request::new(1, vec![0], 2)).unwrap();
        pmm_fault::clear();
        assert_eq!(healed.tier, Tier::Full);
    }

    #[test]
    fn responses_are_identical_at_every_worker_count() {
        let _fg = pmm_fault::test_guard();
        // Trace ids are process-global, so compare everything but them.
        type Answer = (u64, u64, Tier, Vec<Recommendation>);
        let mut reference: Option<Vec<Answer>> = None;
        for workers in [1usize, 2, 4] {
            let server = Server::start(
                ServerConfig { workers: Some(workers), ..cfg() },
                StubEngine::full,
                pop(),
            );
            let handles: Vec<ResponseHandle> = (0..8)
                .map(|u| server.submit(Request::new(u, vec![0, 1, 2], 4)).unwrap())
                .collect();
            let mut got: Vec<Answer> = handles
                .into_iter()
                .map(|h| {
                    let r = h.wait().unwrap();
                    (r.id, r.user, r.tier, r.items)
                })
                .collect();
            got.sort_by_key(|r| r.1);
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(&got, want, "workers={workers}"),
            }
        }
    }

    #[test]
    fn panicking_request_retries_onto_the_respawned_worker() {
        let _fg = pmm_fault::test_guard();
        // Occurrence 0 (first request) panics the worker mid-request.
        pmm_fault::install(pmm_fault::FaultPlan::parse("panic@0").unwrap());
        let server = Server::start(
            ServerConfig { supervisor: fast_super(), ..cfg() },
            StubEngine::full,
            pop(),
        );
        // The panicking request still resolves: the retry lands on the
        // respawned worker and serves the full tier.
        let resp = server.call(Request::new(1, vec![0, 1], 3)).unwrap();
        pmm_fault::clear();
        assert_eq!(resp.tier, Tier::Full, "the retry reaches a healthy model path");
        assert!(
            eventually(|| server.worker_restarts() == vec![1]),
            "the panicked worker is respawned within the budget: {:?}",
            server.worker_restarts()
        );
        assert!(!server.degraded());
        // Subsequent requests are served by the replacement,
        // bit-identical to a healthy server's answers.
        let after = server.call(Request::new(2, vec![0, 1], 3)).unwrap();
        assert_eq!(after.tier, Tier::Full);
        assert_eq!(after.items[0], Recommendation { item: 0, score: 10.0 });
    }

    #[test]
    fn retry_budget_exhaustion_fails_to_the_floor() {
        let _fg = pmm_fault::test_guard();
        // Both the first attempt and its retry panic: with burst=1 and
        // ratio=0 the second panic is denied a retry and falls to the
        // model-free floor (popularity — user 9 has no cache entry).
        pmm_fault::install(pmm_fault::FaultPlan::parse("panic@0,panic@1").unwrap());
        let server = Server::start(
            ServerConfig {
                supervisor: SupervisorConfig {
                    retry_burst: 1,
                    retry_ratio: 0.0,
                    ..fast_super()
                },
                ..cfg()
            },
            StubEngine::full,
            pop(),
        );
        let resp = server.call(Request::new(9, vec![0, 1], 3)).unwrap();
        pmm_fault::clear();
        assert_eq!(resp.tier, Tier::Popularity, "denied retry degrades, never errors");
        assert!(eventually(|| server.worker_restarts() == vec![2]));
    }

    #[test]
    fn wedged_worker_is_retired_and_replaced() {
        let _fg = pmm_fault::test_guard();
        pmm_fault::install(pmm_fault::FaultPlan::parse("stall@0").unwrap());
        let server = Server::start(
            ServerConfig {
                stall_fault: Duration::from_millis(200),
                supervisor: SupervisorConfig {
                    wedge_after: Some(Duration::from_millis(40)),
                    watchdog_interval: Duration::from_millis(5),
                    restart_backoff: Duration::from_millis(1),
                    ..SupervisorConfig::default()
                },
                ..cfg()
            },
            StubEngine::full,
            pop(),
        );
        // The stalled request is charged as a deadline miss by the
        // watchdog, well before the stall itself ends.
        let start = Instant::now();
        let err = server.call(Request::new(1, vec![0, 1], 3)).unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded { stage: "wedged" });
        assert!(
            start.elapsed() < Duration::from_millis(180),
            "the watchdog answers before the stall clears: {:?}",
            start.elapsed()
        );
        // A replacement takes over the slot and serves normally.
        assert!(eventually(|| server.worker_restarts() == vec![1]));
        let resp = server.call(Request::new(2, vec![0, 1], 3)).unwrap();
        pmm_fault::clear();
        assert_eq!(resp.tier, Tier::Full);
    }

    #[test]
    fn exhausted_restart_budget_degrades_to_the_floor_and_swap_revives() {
        let _fg = pmm_fault::test_guard();
        // Every request panics; with a 1-restart budget the single
        // worker gives up after its second death.
        let many: Vec<String> = (0..20).map(|i| format!("panic@{i}")).collect();
        pmm_fault::install(pmm_fault::FaultPlan::parse(&many.join(",")).unwrap());
        let server = Server::start(
            ServerConfig {
                supervisor: SupervisorConfig {
                    max_restarts: 1,
                    retry_burst: 0,
                    retry_ratio: 0.0,
                    ..fast_super()
                },
                ..cfg()
            },
            StubEngine::full,
            pop(),
        );
        // First two requests panic (no retries allowed) and fall to
        // the floor; the worker dies twice and the slot is abandoned.
        for u in [1, 2] {
            let resp = server.call(Request::new(u, vec![0, 1], 3)).unwrap();
            assert_eq!(resp.tier, Tier::Popularity);
        }
        assert!(eventually(|| server.degraded()), "the pool abandons its only slot");
        // Degraded: the supervisor itself serves the floor.
        let resp = server.call(Request::new(3, vec![4], 3)).unwrap();
        assert_eq!(resp.tier, Tier::Popularity);
        pmm_fault::clear();
        // A snapshot swap revives the pool with a fresh budget.
        let report = server.swap_snapshot(StubEngine::full);
        assert_eq!(report.epoch, 1);
        assert_eq!(report.given_up, 0, "the swap revived the abandoned slot");
        assert!(!server.degraded());
        let resp = server.call(Request::new(4, vec![0, 1], 3)).unwrap();
        assert_eq!(resp.tier, Tier::Full, "model serving is restored");
        assert_eq!(resp.epoch, 1, "served by the new snapshot");
    }

    #[test]
    fn snapshot_swap_is_atomic_and_tags_epochs() {
        let _fg = pmm_fault::test_guard();
        let server: Server<StubEngine> = Server::start(cfg(), StubEngine::full, pop());
        let before = server.call(Request::new(1, vec![0, 1], 3)).unwrap();
        assert_eq!((before.epoch, before.tier), (0, Tier::Full));
        // Swap to a single-rung snapshot: tier and epoch both flip.
        let report = server
            .swap_snapshot(|| StubEngine { rungs: vec![Tier::TextOnly], ..StubEngine::full() });
        assert_eq!(report.epoch, 1);
        assert_eq!(report.workers, 1, "every live worker adopted the new snapshot");
        assert_eq!(server.snapshot_epoch(), 1);
        let after = server.call(Request::new(2, vec![0, 1], 3)).unwrap();
        assert_eq!((after.epoch, after.tier), (1, Tier::TextOnly));
        assert!(after.items[0].score >= 1000.0, "text-rung scores carry the offset");
    }

    fn stub_item(seed: usize) -> Item {
        Item {
            category: seed,
            latent: vec![seed as f32, 1.0 - seed as f32],
            tokens: vec![seed, seed + 1],
            patches: vec![0.5; 4],
            mismatched: false,
        }
    }

    #[test]
    fn sharded_serving_is_bit_identical_and_tags_full_coverage() {
        let _fg = pmm_fault::test_guard();
        let plain = Server::start(cfg(), StubEngine::full, pop());
        let sharded = Server::start(
            ServerConfig { shards: ShardConfig { shards: Some(4), ..Default::default() }, ..cfg() },
            StubEngine::sharded,
            pop(),
        );
        for (user, k) in [(1u64, 3usize), (2, 7), (3, 10), (4, 25)] {
            let want = plain.call(Request::new(user, vec![0, 1], k)).unwrap();
            let got = sharded.call(Request::new(user, vec![0, 1], k)).unwrap();
            assert_eq!(want.shards, UNSHARDED, "rank-path answers are tagged unsharded");
            assert_eq!(got.shards, PartialShards { served: 4, total: 4 });
            assert!(!got.shards.is_partial());
            assert_eq!(got.items, want.items, "scatter-gather == exhaustive rank, k={k}");
        }
    }

    #[test]
    fn quarantined_shard_yields_a_tagged_partial_response_then_heals() {
        let _fg = pmm_fault::test_guard();
        // The first admitted shard of the first request panics.
        pmm_fault::install(pmm_fault::FaultPlan::parse("shard_panic@0").unwrap());
        let server = Server::start(
            ServerConfig { shards: ShardConfig { shards: Some(4), ..Default::default() }, ..cfg() },
            StubEngine::sharded,
            pop(),
        );
        let partial = server.call(Request::new(1, vec![0, 1], 8)).unwrap();
        assert_eq!(partial.tier, Tier::Full, "a quarantined shard degrades, never errors");
        assert_eq!(partial.shards, PartialShards { served: 3, total: 4 });
        assert!(partial.shards.is_partial());
        assert!((partial.shards.coverage() - 0.75).abs() < 1e-9);
        assert_eq!(
            server.shard_health(),
            vec![
                ShardHealth::Quarantined,
                ShardHealth::Healthy,
                ShardHealth::Healthy,
                ShardHealth::Healthy
            ]
        );
        // Shard 0 covers items 0-2 (10 items over 4 shards: 3|3|2|2),
        // so the partial answer is the exhaustive top-k minus them.
        let served: Vec<usize> = partial.items.iter().map(|r| r.item).collect();
        assert_eq!(served, vec![3, 4, 5, 6, 7, 8, 9]);
        // The next request probes the quarantined shard, rebuilds it,
        // and full coverage returns.
        let healed = server.call(Request::new(2, vec![0, 1], 8)).unwrap();
        pmm_fault::clear();
        assert_eq!(healed.shards, PartialShards { served: 4, total: 4 });
        let ids: Vec<usize> = healed.items.iter().map(|r| r.item).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(server.shard_health().iter().all(|h| *h == ShardHealth::Healthy));
    }

    #[test]
    fn ingested_items_serve_immediately_and_fold_retires_the_delta() {
        let _fg = pmm_fault::test_guard();
        let server = Server::start(cfg(), StubEngine::sharded, pop());
        let base = server.call(Request::new(1, vec![0, 1], 1)).unwrap();
        assert_eq!(base.items[0], Recommendation { item: 0, score: 10.0 });
        // Stream three items in: the very next request ranks over
        // base + delta (the stub grows its catalogue per delta item,
        // so the best score rises to 13).
        let total = server.ingest((0..3).map(stub_item).collect());
        assert_eq!(total, 3);
        assert_eq!(server.delta_len(), 3);
        let grown = server.call(Request::new(2, vec![0, 1], 1)).unwrap();
        assert_eq!(grown.epoch, 0, "delta serving needs no snapshot swap");
        assert_eq!(grown.items[0], Recommendation { item: 0, score: 13.0 });
        // Fold: publish a base that already contains the delta. The
        // log drains, the epoch moves, and answers are unchanged.
        let report = server.fold_delta(|| StubEngine { n: 13, ..StubEngine::sharded() });
        assert_eq!(report.epoch, 1);
        assert_eq!(server.delta_len(), 0, "the fold retired the delta log");
        let folded = server.call(Request::new(3, vec![0, 1], 1)).unwrap();
        assert_eq!(folded.epoch, 1);
        assert_eq!(folded.items[0], Recommendation { item: 0, score: 13.0 });
        // Items ingested after the fold stack on the new base.
        server.ingest(vec![stub_item(9)]);
        let again = server.call(Request::new(4, vec![0, 1], 1)).unwrap();
        assert_eq!(again.items[0], Recommendation { item: 0, score: 14.0 });
    }

    #[test]
    fn half_open_probe_denials_count_exactly_once_across_a_swap() {
        let _fg = pmm_fault::test_guard();
        // Single-rung ladder: each request burns exactly one
        // text-breaker admission, so denial counts map 1:1 to
        // requests and any reset or double-count across the swap
        // shifts which request becomes the half-open probe.
        let single = || StubEngine { rungs: vec![Tier::TextOnly], ..StubEngine::full() };
        pmm_fault::install(pmm_fault::FaultPlan::parse("err@0").unwrap());
        let server = Server::start(
            ServerConfig {
                breaker: BreakerConfig { window: 4, trip_failures: 1, cooldown_denials: 3 },
                ..cfg()
            },
            single,
            pop(),
        );
        // Request 1 errs and trips the breaker.
        assert_eq!(server.call(Request::new(1, vec![0], 2)).unwrap().tier, Tier::Popularity);
        assert_eq!(server.breaker_state(Component::TextEncoder), BreakerState::Open);
        // Requests 2 and 3: denials 1 and 2 — floor answers.
        assert_eq!(server.call(Request::new(2, vec![0], 2)).unwrap().tier, Tier::Popularity);
        let report = server.swap_snapshot(single);
        assert_eq!(report.epoch, 1);
        assert_eq!(
            server.breaker_state(Component::TextEncoder),
            BreakerState::Open,
            "a snapshot swap must not reset breaker state"
        );
        assert_eq!(server.call(Request::new(3, vec![0], 2)).unwrap().tier, Tier::Popularity);
        // Request 4: denial 3 reaches the cooldown and becomes the
        // half-open probe — it serves the text rung on the new epoch.
        // A swap that reset the denial count would floor this request;
        // one that double-counted would have probed request 3.
        let probe = server.call(Request::new(4, vec![0], 2)).unwrap();
        pmm_fault::clear();
        assert_eq!((probe.tier, probe.epoch), (Tier::TextOnly, 1));
        assert_eq!(server.breaker_state(Component::TextEncoder), BreakerState::Closed);
        assert_eq!(server.call(Request::new(5, vec![0], 2)).unwrap().tier, Tier::TextOnly);
    }
}
