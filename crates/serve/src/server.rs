//! The request runtime: worker pool, admission, pipeline, ladder.
//!
//! One `Server` owns a bounded queue and a pool of worker threads.
//! Each worker builds its own engine replica (the model is
//! single-threaded by design); breakers, the last-good cache, and the
//! popularity floor are shared. A request flows:
//!
//! ```text
//! submit ──bounded queue──> worker: ┌ encode ─ deadline? ─ user-encode ─ deadline? ─ rank ┐
//!    │ full? Rejected{depth}        │   └breaker per encoder component        └breaker    │
//!    └──────────────────────────────┴ rung failed? next ladder rung ... cached ... popularity
//! ```

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::engine::{Component, ServeEngine};
use crate::queue::BoundedQueue;
use crate::Tier;
use pmm_baselines::Popularity;
use pmm_obs::counter as ctr;
use pmm_trace::{hist, Stage, StageClock, TraceId, Tracer};
use pmmrec::{RecommendError, Recommendation};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads; `None` follows [`pmm_par::threads`] so the
    /// `--threads` / `PMM_THREADS` knob governs serving too.
    pub workers: Option<usize>,
    /// Hard queue capacity; beyond it, submissions shed.
    pub queue_capacity: usize,
    /// Default per-request deadline (queue wait included).
    pub deadline: Duration,
    /// How long an injected `slow` encoder fault stalls. Kept longer
    /// than `deadline` in chaos runs so slowness deterministically
    /// becomes a deadline miss.
    pub slow_fault: Duration,
    /// Breaker tuning, shared by all components.
    pub breaker: BreakerConfig,
    /// Start with consumers paused (deterministic overflow tests);
    /// release with [`Server::set_paused`].
    pub start_paused: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: None,
            queue_capacity: 64,
            deadline: Duration::from_millis(250),
            slow_fault: Duration::from_millis(400),
            breaker: BreakerConfig::default(),
            start_paused: false,
        }
    }
}

/// One recommendation request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller identity, keyed by the last-good cache.
    pub user: u64,
    /// Interaction history, most recent last.
    pub prefix: Vec<usize>,
    /// How many items to return.
    pub k: usize,
    /// Drop items already in the prefix.
    pub exclude_seen: bool,
    /// Per-request deadline override.
    pub deadline: Option<Duration>,
}

impl Request {
    /// A request with the server's default deadline and
    /// `exclude_seen = false`.
    pub fn new(user: u64, prefix: Vec<usize>, k: usize) -> Request {
        Request { user, prefix, k, exclude_seen: false, deadline: None }
    }
}

/// A served answer, tagged with the rung that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Monotonic request id assigned at submission.
    pub id: u64,
    /// The request's trace id: every `"ev":"trace"` event carrying it
    /// belongs to this request's causal chain.
    pub trace: TraceId,
    /// Echo of [`Request::user`].
    pub user: u64,
    /// The degradation rung that answered.
    pub tier: Tier,
    /// The ranked items.
    pub items: Vec<Recommendation>,
}

/// Why a request was not served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The queue was full; the request was shed at admission.
    Rejected {
        /// Queue depth observed at rejection.
        queue_depth: usize,
    },
    /// The deadline expired; `stage` names the pipeline boundary where
    /// the request was cancelled.
    DeadlineExceeded {
        /// `"queue"`, `"encode"`, `"user_encode"`, or `"rank"`.
        stage: &'static str,
    },
    /// The request was malformed; nothing was enqueued.
    BadRequest(RecommendError),
    /// The server shut down before the request completed.
    Closed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected { queue_depth } => {
                write!(f, "request shed: queue full at depth {queue_depth}")
            }
            ServeError::DeadlineExceeded { stage } => {
                write!(f, "deadline exceeded at the {stage} stage")
            }
            ServeError::BadRequest(e) => write!(f, "bad request: {e}"),
            ServeError::Closed => write!(f, "server closed"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Awaits one submitted request's outcome.
#[derive(Debug)]
pub struct ResponseHandle {
    /// The id assigned at submission.
    pub id: u64,
    /// The trace id minted at enqueue.
    pub trace: TraceId,
    rx: mpsc::Receiver<Result<Response, ServeError>>,
}

impl ResponseHandle {
    /// Blocks until the request completes (or the server closes).
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }
}

struct Job {
    id: u64,
    trace: TraceId,
    request: Request,
    enqueued: Instant,
    deadline: Instant,
    reply: mpsc::Sender<Result<Response, ServeError>>,
}

struct Shared {
    queue: BoundedQueue<Job>,
    breakers: [Mutex<CircuitBreaker>; 3],
    cache: Mutex<HashMap<u64, Vec<Recommendation>>>,
    popularity: Popularity,
    slow_fault: Duration,
}

/// Locks shared serving state, recovering from poison: breaker and
/// cache values are valid at every instruction boundary, and a worker
/// panicking mid-request must not take every other worker down.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn breaker_of(shared: &Shared, c: Component) -> &Mutex<CircuitBreaker> {
    let idx = match c {
        Component::TextEncoder => 0,
        Component::VisionEncoder => 1,
        Component::Ranker => 2,
    };
    // pmm-audit: allow(hot-index) — idx is 0..=2 by the match above, and the array has 3 slots
    &shared.breakers[idx]
}

/// The serving runtime. Dropping it closes the queue and joins the
/// workers (draining accepted requests first).
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
    default_deadline: Duration,
}

impl Server {
    /// Starts the worker pool. `factory` builds one engine per worker
    /// thread — engines are never shared, so the model's
    /// single-threaded internals are safe; build replicas from the
    /// same seed for bit-identical results across workers.
    /// `popularity` is the ladder's always-available floor.
    pub fn start<E, F>(cfg: ServerConfig, factory: F, popularity: Popularity) -> Server
    where
        E: ServeEngine,
        F: Fn() -> E + Send + Sync + 'static,
    {
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_capacity),
            breakers: [
                Mutex::new(CircuitBreaker::new(cfg.breaker)),
                Mutex::new(CircuitBreaker::new(cfg.breaker)),
                Mutex::new(CircuitBreaker::new(cfg.breaker)),
            ],
            cache: Mutex::new(HashMap::new()),
            popularity,
            slow_fault: cfg.slow_fault,
        });
        if cfg.start_paused {
            shared.queue.set_paused(true);
        }
        let n_workers = cfg.workers.unwrap_or_else(pmm_par::threads).max(1);
        let factory = Arc::new(factory);
        let workers = (0..n_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let factory = Arc::clone(&factory);
                std::thread::Builder::new()
                    .name(format!("pmm-serve-{i}"))
                    .spawn(move || {
                        let engine = factory();
                        while let Some(job) = shared.queue.pop() {
                            handle(&engine, &shared, job);
                        }
                    })
                    // pmm-audit: allow(hot-unwrap) — pool startup, not the request path; a failed spawn means the server never comes up
                    .expect("spawn serve worker")
            })
            .collect();
        Server { shared, workers, next_id: AtomicU64::new(0), default_deadline: cfg.deadline }
    }

    /// Enqueues a request. Never blocks: a full queue sheds with
    /// [`ServeError::Rejected`], a malformed request fails fast with
    /// [`ServeError::BadRequest`].
    pub fn submit(&self, request: Request) -> Result<ResponseHandle, ServeError> {
        ctr::SERVE_REQUESTS.add(1);
        if request.prefix.is_empty() {
            return Err(ServeError::BadRequest(RecommendError::EmptyPrefix));
        }
        let mut tracer = Tracer::start();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let enqueued = Instant::now();
        let deadline = enqueued + request.deadline.unwrap_or(self.default_deadline);
        let (tx, rx) = mpsc::channel();
        let job = Job { id, trace: tracer.id(), request, enqueued, deadline, reply: tx };
        match self.shared.queue.try_push(job) {
            Ok(depth) => {
                if pmm_obs::enabled() {
                    tracer.instant(Stage::Enqueue, "accepted", &format!("depth={depth}"));
                }
                Ok(ResponseHandle { id, trace: tracer.id(), rx })
            }
            Err(queue_depth) => {
                ctr::SERVE_SHED.add(1);
                if pmm_obs::enabled() {
                    tracer.instant(Stage::Enqueue, "shed", &format!("depth={queue_depth}"));
                }
                Err(ServeError::Rejected { queue_depth })
            }
        }
    }

    /// Submit and wait: the one-call convenience path.
    pub fn call(&self, request: Request) -> Result<Response, ServeError> {
        self.submit(request)?.wait()
    }

    /// Pauses or releases the worker side of the queue (producers are
    /// unaffected) — the deterministic overflow-test switch.
    pub fn set_paused(&self, paused: bool) {
        self.shared.queue.set_paused(paused);
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// A component breaker's current state.
    pub fn breaker_state(&self, c: Component) -> BreakerState {
        lock_clean(breaker_of(&self.shared, c)).state()
    }

    /// A component breaker's lifetime trip count.
    pub fn breaker_trips(&self, c: Component) -> u64 {
        lock_clean(breaker_of(&self.shared, c)).trips()
    }

    /// Closes the queue and joins the workers after they drain the
    /// accepted backlog.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn expired(deadline: Instant) -> bool {
    Instant::now() >= deadline
}

fn deadline_miss(tracer: &mut Tracer, request_clock: StageClock, job: &Job, stage: &'static str) {
    ctr::SERVE_DEADLINE_MISSES.add(1);
    hist::H_TOTAL.observe(job.enqueued.elapsed());
    tracer.instant(Stage::Respond, "deadline_miss", stage);
    tracer.finish(request_clock, "deadline_miss", stage);
    let _ = job.reply.send(Err(ServeError::DeadlineExceeded { stage }));
}

fn respond(
    shared: &Shared,
    tracer: &mut Tracer,
    request_clock: StageClock,
    job: &Job,
    tier: Tier,
    items: Vec<Recommendation>,
) {
    match tier {
        Tier::Full => ctr::SERVE_TIER_FULL.add(1),
        Tier::TextOnly | Tier::VisionOnly => ctr::SERVE_TIER_SINGLE.add(1),
        Tier::CachedTopK => ctr::SERVE_TIER_CACHED.add(1),
        Tier::Popularity => ctr::SERVE_TIER_POP.add(1),
    }
    if matches!(tier, Tier::Full | Tier::TextOnly | Tier::VisionOnly) {
        lock_clean(&shared.cache).insert(job.request.user, items.clone());
    }
    hist::H_TOTAL.observe(job.enqueued.elapsed());
    tracer.instant(Stage::Respond, "ok", tier.label());
    tracer.finish(request_clock, "ok", tier.label());
    let _ = job.reply.send(Ok(Response {
        id: job.id,
        trace: job.trace,
        user: job.request.user,
        tier,
        items,
    }));
}

/// Runs one request through the ladder. Every exit path sends exactly
/// one reply. The worker resumes the request's trace chain at seq 1
/// (the submitting side emitted the seq-0 enqueue event): every timed
/// stage runs inside a [`Tracer::begin`]/[`Tracer::finish`] pair so the
/// stage histogram, trace event, and obs span stay in lockstep, and
/// breaker denials and tier transitions land as instant events.
fn handle<E: ServeEngine>(engine: &E, shared: &Shared, job: Job) {
    let mut tracer = Tracer::resume(job.trace, 1);
    let request_clock = tracer.begin(Stage::Request);
    tracer.observe(Stage::Queue, job.enqueued.elapsed(), "ok", "");
    if expired(job.deadline) {
        deadline_miss(&mut tracer, request_clock, &job, "queue");
        return;
    }
    let req = &job.request;

    'ladder: for tier in engine.ladder() {
        tracer.instant(Stage::Tier, "attempt", tier.label());
        let components = engine.components(tier);
        // Admission: every encoder component on this rung must admit.
        // Components already admitted when a later one denies get
        // released (their probe slot is returned unreported).
        let mut admitted = Vec::new();
        for &c in &components {
            if lock_clean(breaker_of(shared, c)).admit() {
                admitted.push(c);
            } else {
                tracer.instant(Stage::Breaker, "deny", c.label());
                for &a in &admitted {
                    lock_clean(breaker_of(shared, a)).release();
                }
                continue 'ladder;
            }
        }

        // Stage 1: encode.
        let clock = tracer.begin(Stage::Encode);
        let encoded = match engine.encode(tier, shared.slow_fault) {
            Err(failed) => {
                tracer.finish(clock, "err", failed.label());
                for &c in &components {
                    let mut b = lock_clean(breaker_of(shared, c));
                    // Only the component that errored gets an outcome;
                    // siblings the abort skipped return their slot.
                    if c == failed {
                        b.record(false);
                    } else {
                        b.release();
                    }
                }
                continue 'ladder;
            }
            Ok(e) => {
                tracer.finish(clock, "ok", tier.label());
                e
            }
        };
        if expired(job.deadline) {
            // Slowness is charged to the components that stalled; the
            // rest completed honestly.
            for &c in &components {
                lock_clean(breaker_of(shared, c)).record(!encoded.slept.contains(&c));
            }
            deadline_miss(&mut tracer, request_clock, &job, "encode");
            return;
        }
        for &c in &components {
            lock_clean(breaker_of(shared, c)).record(true);
        }

        // Stages 2+3 share the ranking-path breaker.
        if !lock_clean(breaker_of(shared, Component::Ranker)).admit() {
            tracer.instant(Stage::Breaker, "deny", Component::Ranker.label());
            break 'ladder;
        }

        // Stage 2: user encoding.
        let clock = tracer.begin(Stage::UserEncode);
        let user = match engine.user_encode(&encoded.catalog, &req.prefix) {
            Err(_) => {
                tracer.finish(clock, "err", tier.label());
                lock_clean(breaker_of(shared, Component::Ranker)).record(false);
                break 'ladder;
            }
            Ok(u) => {
                tracer.finish(clock, "ok", tier.label());
                u
            }
        };
        if expired(job.deadline) {
            // The ranking path itself was healthy; the budget ran out.
            lock_clean(breaker_of(shared, Component::Ranker)).record(true);
            deadline_miss(&mut tracer, request_clock, &job, "user_encode");
            return;
        }

        // Stage 3: rank.
        let clock = tracer.begin(Stage::Rank);
        let items = engine.rank(&encoded.catalog, &user, &req.prefix, req.k, req.exclude_seen);
        tracer.finish(clock, "ok", tier.label());
        lock_clean(breaker_of(shared, Component::Ranker)).record(true);
        respond(shared, &mut tracer, request_clock, &job, tier, items);
        return;
    }

    // Model-free fallbacks: never compute, so no deadline risk beyond
    // this final check.
    if expired(job.deadline) {
        deadline_miss(&mut tracer, request_clock, &job, "rank");
        return;
    }
    tracer.instant(Stage::Tier, "attempt", Tier::CachedTopK.label());
    let cached = lock_clean(&shared.cache).get(&req.user).cloned();
    if let Some(mut items) = cached {
        items.truncate(req.k);
        respond(shared, &mut tracer, request_clock, &job, Tier::CachedTopK, items);
        return;
    }
    tracer.instant(Stage::Tier, "attempt", Tier::Popularity.label());
    let exclude: &[usize] = if req.exclude_seen { &req.prefix } else { &[] };
    let items = shared
        .popularity
        .top_k(req.k, exclude)
        .into_iter()
        .map(|(item, count)| Recommendation { item, score: count as f32 })
        .collect();
    respond(shared, &mut tracer, request_clock, &job, Tier::Popularity, items);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Encoded;
    use pmm_tensor::Tensor;

    /// A model-free engine with the same fault-gate behaviour as the
    /// real one: catalogue scores descend with item id and carry a
    /// per-rung offset so tests can tell tiers apart by score.
    struct StubEngine {
        n: usize,
        rungs: Vec<Tier>,
    }

    impl StubEngine {
        fn full() -> StubEngine {
            StubEngine { n: 10, rungs: vec![Tier::Full, Tier::TextOnly, Tier::VisionOnly] }
        }
    }

    fn tier_offset(tier: Tier) -> f32 {
        match tier {
            Tier::Full => 0.0,
            Tier::TextOnly => 1000.0,
            Tier::VisionOnly => 2000.0,
            _ => 0.0,
        }
    }

    impl ServeEngine for StubEngine {
        fn n_items(&self) -> usize {
            self.n
        }

        fn ladder(&self) -> Vec<Tier> {
            self.rungs.clone()
        }

        fn components(&self, tier: Tier) -> Vec<Component> {
            match tier {
                Tier::Full => vec![Component::TextEncoder, Component::VisionEncoder],
                Tier::TextOnly => vec![Component::TextEncoder],
                Tier::VisionOnly => vec![Component::VisionEncoder],
                _ => Vec::new(),
            }
        }

        fn encode(&self, tier: Tier, slow_fault: Duration) -> Result<Encoded, Component> {
            let mut slept = Vec::new();
            for component in self.components(tier) {
                match pmm_fault::trip_encode() {
                    Some(pmm_fault::EncodeFault::Err) => return Err(component),
                    Some(pmm_fault::EncodeFault::Slow) => {
                        std::thread::sleep(slow_fault);
                        slept.push(component);
                    }
                    None => {}
                }
            }
            let off = tier_offset(tier);
            let data: Vec<f32> = (0..self.n).map(|i| off + (self.n - i) as f32).collect();
            let catalog = Tensor::from_vec(data, &[self.n, 1]).unwrap();
            Ok(Encoded { catalog, slept })
        }

        fn user_encode(
            &self,
            _catalog: &Tensor,
            prefix: &[usize],
        ) -> Result<Tensor, RecommendError> {
            if prefix.is_empty() {
                return Err(RecommendError::EmptyPrefix);
            }
            Ok(Tensor::from_vec(vec![1.0], &[1, 1]).unwrap())
        }

        fn rank(
            &self,
            catalog: &Tensor,
            user: &Tensor,
            prefix: &[usize],
            k: usize,
            exclude_seen: bool,
        ) -> Vec<Recommendation> {
            let u = user.data()[0];
            let mut all: Vec<Recommendation> = catalog
                .data()
                .iter()
                .enumerate()
                .map(|(item, &s)| Recommendation { item, score: s * u })
                .filter(|r| !exclude_seen || !prefix.contains(&r.item))
                .collect();
            all.sort_by(|a, b| b.score.total_cmp(&a.score));
            all.truncate(k);
            all
        }
    }

    fn pop() -> Popularity {
        Popularity::from_sequences(10, &[vec![5, 5, 5, 3, 3], vec![5, 1]])
    }

    fn cfg() -> ServerConfig {
        ServerConfig {
            workers: Some(1),
            deadline: Duration::from_secs(10),
            breaker: BreakerConfig { window: 4, trip_failures: 1, cooldown_denials: 1000 },
            ..ServerConfig::default()
        }
    }

    #[test]
    fn healthy_requests_serve_the_full_tier() {
        let _fg = pmm_fault::test_guard();
        let server = Server::start(cfg(), StubEngine::full, pop());
        let resp = server.call(Request::new(1, vec![0, 1], 3)).unwrap();
        assert_eq!(resp.tier, Tier::Full);
        assert_eq!(resp.items.len(), 3);
        // Full-tier scores carry no offset and descend with item id.
        assert_eq!(resp.items[0], Recommendation { item: 0, score: 10.0 });
        assert_eq!(resp.items[1], Recommendation { item: 1, score: 9.0 });
    }

    #[test]
    fn empty_prefix_is_rejected_at_submission() {
        let _fg = pmm_fault::test_guard();
        let server = Server::start(cfg(), StubEngine::full, pop());
        let err = server.submit(Request::new(1, vec![], 3)).unwrap_err();
        assert_eq!(err, ServeError::BadRequest(RecommendError::EmptyPrefix));
    }

    #[test]
    fn full_queue_sheds_with_observed_depth() {
        let _fg = pmm_fault::test_guard();
        let server = Server::start(
            ServerConfig { queue_capacity: 2, start_paused: true, ..cfg() },
            StubEngine::full,
            pop(),
        );
        let h1 = server.submit(Request::new(1, vec![0], 2)).unwrap();
        let h2 = server.submit(Request::new(2, vec![0], 2)).unwrap();
        let shed = server.submit(Request::new(3, vec![0], 2)).unwrap_err();
        assert_eq!(shed, ServeError::Rejected { queue_depth: 2 });
        // Releasing the pause drains the accepted backlog untouched.
        server.set_paused(false);
        assert!(h1.wait().is_ok());
        assert!(h2.wait().is_ok());
    }

    #[test]
    fn encoder_errors_walk_down_the_ladder() {
        let _fg = pmm_fault::test_guard();
        pmm_fault::install(pmm_fault::FaultPlan::parse("err@0").unwrap());
        let server = Server::start(cfg(), StubEngine::full, pop());
        // Full: the text gate errs -> text breaker trips open; TextOnly
        // is denied admission; VisionOnly serves.
        let resp = server.call(Request::new(1, vec![0, 1], 3)).unwrap();
        pmm_fault::clear();
        assert_eq!(resp.tier, Tier::VisionOnly);
        assert!(resp.items[0].score >= 2000.0, "vision-rung scores carry the offset");
        assert_eq!(server.breaker_state(Component::TextEncoder), BreakerState::Open);
        assert_eq!(server.breaker_trips(Component::TextEncoder), 1);
        assert_eq!(server.breaker_state(Component::VisionEncoder), BreakerState::Closed);
    }

    #[test]
    fn slow_fault_cancels_at_the_encode_boundary() {
        let _fg = pmm_fault::test_guard();
        pmm_fault::install(pmm_fault::FaultPlan::parse("slow@0").unwrap());
        let server = Server::start(
            ServerConfig {
                deadline: Duration::from_millis(30),
                slow_fault: Duration::from_millis(120),
                ..cfg()
            },
            StubEngine::full,
            pop(),
        );
        let err = server.call(Request::new(1, vec![0, 1], 3)).unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded { stage: "encode" });
        // The stalled component was charged with a timeout failure; the
        // healthy sibling was not.
        assert_eq!(server.breaker_state(Component::TextEncoder), BreakerState::Open);
        assert_eq!(server.breaker_state(Component::VisionEncoder), BreakerState::Closed);
        // The next request routes around the tripped text path.
        let resp = server.call(Request::new(1, vec![0, 1], 3)).unwrap();
        pmm_fault::clear();
        assert_eq!(resp.tier, Tier::VisionOnly);
    }

    #[test]
    fn cache_then_popularity_when_every_model_path_is_down() {
        let _fg = pmm_fault::test_guard();
        // Request 0 is healthy (occurrences 0-1); request 1 errs on
        // both surviving gates (occurrences 2-3), tripping both
        // encoder breakers.
        pmm_fault::install(pmm_fault::FaultPlan::parse("err@2,err@3").unwrap());
        let server = Server::start(cfg(), StubEngine::full, pop());
        let healthy = server.call(Request::new(7, vec![0, 1], 3)).unwrap();
        assert_eq!(healthy.tier, Tier::Full);

        // Known user: the last-good cache answers.
        let cached = server.call(Request::new(7, vec![0, 1], 2)).unwrap();
        assert_eq!(cached.tier, Tier::CachedTopK);
        assert_eq!(cached.items, healthy.items[..2].to_vec(), "cache replays the last good top-k");

        // Unknown user with everything down: the popularity floor.
        let cold = server.call(Request::new(99, vec![4], 3)).unwrap();
        pmm_fault::clear();
        assert_eq!(cold.tier, Tier::Popularity);
        let ids: Vec<usize> = cold.items.iter().map(|r| r.item).collect();
        assert_eq!(ids, vec![5, 3, 1], "global best-sellers in count order");
        assert_eq!(server.breaker_state(Component::TextEncoder), BreakerState::Open);
        assert_eq!(server.breaker_state(Component::VisionEncoder), BreakerState::Open);
    }

    #[test]
    fn breaker_heals_through_a_half_open_probe() {
        let _fg = pmm_fault::test_guard();
        pmm_fault::install(pmm_fault::FaultPlan::parse("err@0").unwrap());
        let server = Server::start(
            ServerConfig {
                breaker: BreakerConfig { window: 4, trip_failures: 1, cooldown_denials: 3 },
                ..cfg()
            },
            StubEngine::full,
            pop(),
        );
        // Trip the text breaker: the Full rung errs, the TextOnly rung
        // is denied (denial 1), VisionOnly serves.
        let first = server.call(Request::new(1, vec![0], 2)).unwrap();
        assert_eq!(first.tier, Tier::VisionOnly);
        assert_eq!(server.breaker_state(Component::TextEncoder), BreakerState::Open);
        // Next request: the Full-rung admission is denial 2, then the
        // TextOnly-rung admission reaches the cooldown and becomes the
        // half-open probe — it succeeds and closes the breaker.
        let probe = server.call(Request::new(1, vec![0], 2)).unwrap();
        assert_eq!(probe.tier, Tier::TextOnly, "the probe serves the text rung");
        assert_eq!(server.breaker_state(Component::TextEncoder), BreakerState::Closed);
        // Full service is restored.
        let healed = server.call(Request::new(1, vec![0], 2)).unwrap();
        pmm_fault::clear();
        assert_eq!(healed.tier, Tier::Full);
    }

    #[test]
    fn responses_are_identical_at_every_worker_count() {
        let _fg = pmm_fault::test_guard();
        // Trace ids are process-global, so compare everything but them.
        type Answer = (u64, u64, Tier, Vec<Recommendation>);
        let mut reference: Option<Vec<Answer>> = None;
        for workers in [1usize, 2, 4] {
            let server = Server::start(
                ServerConfig { workers: Some(workers), ..cfg() },
                StubEngine::full,
                pop(),
            );
            let handles: Vec<ResponseHandle> = (0..8)
                .map(|u| server.submit(Request::new(u, vec![0, 1, 2], 4)).unwrap())
                .collect();
            let mut got: Vec<Answer> = handles
                .into_iter()
                .map(|h| {
                    let r = h.wait().unwrap();
                    (r.id, r.user, r.tier, r.items)
                })
                .collect();
            got.sort_by_key(|r| r.1);
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(&got, want, "workers={workers}"),
            }
        }
    }
}
