//! # pmm-serve
//!
//! A resilient inference-serving runtime in front of `pmmrec`. The
//! model gives a function you can call; this crate gives a service
//! that stays up when callers, encoders, or the clock misbehave:
//!
//! * **Bounded work queue with load shedding** — [`Server::submit`]
//!   never blocks and never grows memory without bound; a full queue
//!   returns [`ServeError::Rejected`] with the observed depth so the
//!   caller can back off.
//! * **Per-request deadlines with cooperative cancellation** — the
//!   pipeline (encode → user-encode → rank) checks the deadline
//!   between stages and abandons the request rather than serving a
//!   stale answer.
//! * **Per-component circuit breakers** — rolling error/timeout
//!   windows around the text encoder, vision encoder, and ranking
//!   path; a tripped breaker short-circuits the failing path and
//!   heals through a half-open probe.
//! * **Tiered degradation ladder** — full dual-modality scoring, then
//!   single-surviving-modality scoring, then the user's cached
//!   last-good top-k, then the global popularity baseline. Every
//!   response is tagged with the [`Tier`] that produced it; the
//!   service answers something at every rung.
//! * **Worker supervision with panic isolation** — each request runs
//!   under `catch_unwind`; a panic fails *that request* into the
//!   ladder (one retry under a global retry budget, else the floor)
//!   while the supervisor respawns the worker under an
//!   exponential-backoff restart budget. A heartbeat watchdog retires
//!   wedged workers in place; a pool that exhausts every restart
//!   budget degrades to supervisor-served floor answers instead of
//!   going dark.
//! * **Zero-downtime snapshot hot-swap** — [`Server::swap_snapshot`]
//!   atomically publishes a new engine snapshot; workers rebuild
//!   their replicas between requests, in-flight requests keep the
//!   epoch they started with, and no request is shed on account of
//!   the reload. Responses carry their snapshot epoch.
//!
//! Worker counts default to [`pmm_par::threads`], so the same
//! `--threads` / `PMM_THREADS` knob governs kernel parallelism and
//! serving concurrency. All scheduling is deterministic given a
//! `pmm_fault::FaultPlan` and one worker, which is how `serve_chaos`
//! proves the ladder.
//!
//! Every request is traced: submission mints a [`TraceId`] (re-exported
//! from `pmm-trace`) that rides the job through every stage, each stage
//! records into its latency histogram, and breaker denials and tier
//! transitions land as structured trace events. See `pmm_trace` for
//! histograms, metrics exposition, and SLO evaluation over the
//! counters this crate maintains.

pub mod breaker;
pub mod engine;
pub mod queue;
pub(crate) mod race;
pub mod server;
pub mod shards;
pub mod supervisor;
pub mod swap;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use engine::{Component, PmmEngine, ServeEngine};
pub use pmm_trace::TraceId;
pub use queue::BoundedQueue;
pub use server::{Request, Response, ServeError, Server, ServerConfig};
pub use shards::{ShardConfig, ShardHealth};
pub use supervisor::SupervisorConfig;
pub use swap::SwapReport;

/// The degradation rung that produced a response, best first. The
/// serving loop walks these in order and stops at the first rung that
/// can answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Full dual-modality scoring through the fusion module.
    Full,
    /// Text-encoder-only scoring (vision path unavailable).
    TextOnly,
    /// Vision-encoder-only scoring (text path unavailable).
    VisionOnly,
    /// The user's cached last-good top-k (no model path available).
    CachedTopK,
    /// Global popularity baseline (nothing user-specific available).
    Popularity,
}

impl Tier {
    /// Short stable label for logs and summaries.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Full => "full",
            Tier::TextOnly => "text_only",
            Tier::VisionOnly => "vision_only",
            Tier::CachedTopK => "cached_top_k",
            Tier::Popularity => "popularity",
        }
    }
}
