//! The serving-side view of a model: the three pipeline stages with
//! fault gates on the encoder calls.
//!
//! `PmmRec` is single-threaded by construction (its autograd graph is
//! `Rc`-based), so the server never shares an engine across workers —
//! each worker thread builds its own replica through a factory
//! closure. Deterministic seeding makes every replica bit-identical,
//! which is what lets the no-fault acceptance check compare served
//! results against direct `recommend_top_k` calls.

use crate::Tier;
use pmm_data::world::Item;
use pmm_eval::SeqRecommender;
use pmm_tensor::Tensor;
use pmmrec::{Modality, PmmRec, Precision, RecommendError, Recommendation};
use std::time::Duration;

/// A serving component a circuit breaker guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    /// The item text encoder.
    TextEncoder,
    /// The item vision encoder.
    VisionEncoder,
    /// The user-encode + rank path.
    Ranker,
}

impl Component {
    /// Stable label for logs and summaries.
    pub fn label(self) -> &'static str {
        match self {
            Component::TextEncoder => "text_encoder",
            Component::VisionEncoder => "vision_encoder",
            Component::Ranker => "ranker",
        }
    }
}

/// Outcome of the encode stage.
pub struct Encoded {
    /// The `[n_items, d]` catalogue for the attempted rung.
    pub catalog: Tensor,
    /// Components that absorbed an injected `slow` fault — the caller
    /// re-checks the deadline and charges these breakers on a miss.
    pub slept: Vec<Component>,
}

/// The staged serving interface the worker loop drives. One engine
/// per worker thread; anything shared (breakers, caches) lives in the
/// server.
pub trait ServeEngine {
    /// Catalogue size.
    fn n_items(&self) -> usize;

    /// The model-backed rungs this engine can serve, best first
    /// (subset of `Full`/`TextOnly`/`VisionOnly`).
    fn ladder(&self) -> Vec<Tier>;

    /// Encoder components a rung touches.
    fn components(&self, tier: Tier) -> Vec<Component>;

    /// Stage 1: per-request encoder work for a rung. Consults the
    /// fault plan once per component (a `slow` fault sleeps for
    /// `slow_fault`; an `err` fault fails the component).
    fn encode(&self, tier: Tier, slow_fault: Duration) -> Result<Encoded, Component>;

    /// Stage 2: the `[1, d]` user vector for a prefix.
    fn user_encode(&self, catalog: &Tensor, prefix: &[usize]) -> Result<Tensor, RecommendError>;

    /// Stage 3: rank the catalogue for the user. `tier` names the rung
    /// whose catalogue was encoded, so precision-aware engines can
    /// route model-backed rungs through their quantized caches.
    fn rank(
        &self,
        tier: Tier,
        catalog: &Tensor,
        user: &Tensor,
        prefix: &[usize],
        k: usize,
        exclude_seen: bool,
    ) -> Vec<Recommendation>;

    /// The exhaustive per-item score row for the user, in catalog
    /// order — the input the sharded scatter-gather selects over.
    /// `None` opts the engine out of sharding: the worker falls back
    /// to [`ServeEngine::rank`] directly. Engines that implement both
    /// must keep them consistent: selecting the top-k of `scores` with
    /// the exhaustive sort must equal `rank`'s answer bit-for-bit.
    fn scores(&self, tier: Tier, catalog: &Tensor, user: &Tensor) -> Option<Vec<f32>> {
        let _ = (tier, catalog, user);
        None
    }

    /// Apply streamed delta items to this replica's catalog (the
    /// worker calls it between requests, before serving, whenever the
    /// shared delta log has items this replica has not seen). The
    /// default ignores deltas — engines without an extensible catalog
    /// simply keep serving their base.
    fn apply_delta(&mut self, items: &[Item]) {
        let _ = items;
    }
}

/// Maps a model-backed tier to the modality path it scores through.
pub(crate) fn tier_modality(tier: Tier) -> Option<Modality> {
    match tier {
        Tier::Full => Some(Modality::Both),
        Tier::TextOnly => Some(Modality::TextOnly),
        Tier::VisionOnly => Some(Modality::VisionOnly),
        Tier::CachedTopK | Tier::Popularity => None,
    }
}

/// The production engine: a `PmmRec` replica owned by one worker.
pub struct PmmEngine {
    model: PmmRec,
    /// Ranking precision for model-backed tiers. `Int8` scores through
    /// the model's quantized catalogue cache (per-row affine int8,
    /// dequant-free integer dot products); floor tiers are unaffected.
    precision: Precision,
}

impl PmmEngine {
    /// Wraps a model replica with full-precision (f32) ranking.
    pub fn new(model: PmmRec) -> PmmEngine {
        PmmEngine::with_precision(model, Precision::F32)
    }

    /// Wraps a model replica with an explicit ranking precision — the
    /// serving tier's opt-in to the int8 quantized path.
    pub fn with_precision(model: PmmRec, precision: Precision) -> PmmEngine {
        PmmEngine { model, precision }
    }

    /// The wrapped model.
    pub fn model(&self) -> &PmmRec {
        &self.model
    }

    /// The ranking precision this engine serves with.
    pub fn precision(&self) -> Precision {
        self.precision
    }
}

impl ServeEngine for PmmEngine {
    fn n_items(&self) -> usize {
        SeqRecommender::n_items(&self.model)
    }

    fn ladder(&self) -> Vec<Tier> {
        self.model
            .modality_ladder()
            .into_iter()
            .map(|m| match m {
                Modality::Both => Tier::Full,
                Modality::TextOnly => Tier::TextOnly,
                Modality::VisionOnly => Tier::VisionOnly,
            })
            .collect()
    }

    fn components(&self, tier: Tier) -> Vec<Component> {
        match tier_modality(tier) {
            Some(Modality::Both) => vec![Component::TextEncoder, Component::VisionEncoder],
            Some(Modality::TextOnly) => vec![Component::TextEncoder],
            Some(Modality::VisionOnly) => vec![Component::VisionEncoder],
            None => Vec::new(),
        }
    }

    fn encode(&self, tier: Tier, slow_fault: Duration) -> Result<Encoded, Component> {
        // pmm-audit: allow(hot-unwrap) — ladder() only yields model-backed tiers, so tier_modality is total here
        let modality = tier_modality(tier).expect("encode called on a model-backed tier");
        let mut slept = Vec::new();
        for component in self.components(tier) {
            match pmm_fault::trip_encode() {
                Some(pmm_fault::EncodeFault::Err) => return Err(component),
                Some(pmm_fault::EncodeFault::Slow) => {
                    std::thread::sleep(slow_fault);
                    slept.push(component);
                }
                None => {}
            }
        }
        let catalog = self
            .model
            .serve_catalog(modality)
            // pmm-audit: allow(hot-unwrap) — the modality came from the model's own ladder, so it is supported by construction
            .expect("ladder() only reports supported modalities");
        Ok(Encoded { catalog, slept })
    }

    fn user_encode(&self, catalog: &Tensor, prefix: &[usize]) -> Result<Tensor, RecommendError> {
        self.model.serve_user_vector(catalog, prefix)
    }

    fn rank(
        &self,
        tier: Tier,
        catalog: &Tensor,
        user: &Tensor,
        prefix: &[usize],
        k: usize,
        exclude_seen: bool,
    ) -> Vec<Recommendation> {
        // The quantized path needs the rung's modality to reach the
        // per-modality quantized catalogue cache; anything that falls
        // outside it (floor tiers never rank, quantization refused)
        // degrades to the exact f32 product rather than failing the
        // request.
        if self.precision == Precision::Int8 {
            if let Some(modality) = tier_modality(tier) {
                if let Ok(qcat) = self.model.serve_catalog_q(modality) {
                    return self.model.serve_rank_q(&qcat, user, prefix, k, exclude_seen);
                }
            }
        }
        self.model.serve_rank(catalog, user, prefix, k, exclude_seen)
    }

    fn scores(&self, tier: Tier, catalog: &Tensor, user: &Tensor) -> Option<Vec<f32>> {
        // Mirror rank()'s precision routing exactly, so the sharded
        // selection over this row is bit-identical to the unsharded
        // answer on both the f32 and int8 paths.
        if self.precision == Precision::Int8 {
            if let Some(modality) = tier_modality(tier) {
                if let Ok(qcat) = self.model.serve_catalog_q(modality) {
                    return Some(self.model.serve_scores_q(&qcat, user));
                }
            }
        }
        Some(self.model.serve_scores(catalog, user))
    }

    fn apply_delta(&mut self, items: &[Item]) {
        self.model.ingest_items(items.to_vec());
    }
}
