//! Versioned snapshot store for zero-downtime hot-swap.
//!
//! PMMRec is ID-free, so a model+catalog snapshot is plug-and-play:
//! swapping one in must not shed a single request. The store keeps the
//! current engine *factory* behind a mutex-guarded `Arc` plus an epoch
//! counter: [`Snapshots::publish`] flips both atomically (with respect
//! to [`Snapshots::current`]), and each worker rebuilds its own replica
//! from the new factory between requests — engines are `!Send` by
//! design, so "build off-thread" means *off the caller's thread*: the
//! swap caller never builds an engine and never blocks serving.
//!
//! In-flight requests keep the engine (and epoch tag) they started
//! with; `Server::swap_snapshot` waits until every live worker has
//! adopted the new epoch before returning, which is the drain the
//! `serve_swap_drain_ns` SLO budget meters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// The engine factory a worker rebuilds its replica from.
pub(crate) type Factory<E> = Arc<dyn Fn() -> E + Send + Sync>;

/// The versioned factory store shared by the server handle and every
/// worker.
pub(crate) struct Snapshots<E> {
    factory: Mutex<Factory<E>>,
    epoch: AtomicU64,
}

impl<E> Snapshots<E> {
    /// Epoch 0 with the boot factory.
    pub(crate) fn new(factory: Factory<E>) -> Snapshots<E> {
        Snapshots { factory: Mutex::new(factory), epoch: AtomicU64::new(0) }
    }

    fn lock_factory(&self) -> MutexGuard<'_, Factory<E>> {
        // The stored value is an Arc pointer — valid at every
        // instruction boundary — so a poisoned guard is safe to adopt.
        self.factory.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The currently published epoch.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// A consistent `(factory, epoch)` pair: the epoch is read under
    /// the factory lock, so a worker never builds epoch N's engine
    /// from epoch N+1's factory or vice versa.
    pub(crate) fn current(&self) -> (Factory<E>, u64) {
        let guard = self.lock_factory();
        let epoch = self.epoch.load(Ordering::Acquire);
        (Arc::clone(&guard), epoch)
    }

    /// Publish a new factory, bumping the epoch. Returns the new epoch.
    pub(crate) fn publish(&self, factory: Factory<E>) -> u64 {
        let mut guard = self.lock_factory();
        *guard = factory;
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }
}

/// What a completed [`crate::Server::swap_snapshot`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapReport {
    /// The epoch the swap published; responses served from the new
    /// snapshot carry it.
    pub epoch: u64,
    /// Flip-to-drain time: from publishing the new factory until every
    /// live worker had adopted it.
    pub drain: Duration,
    /// Worker slots serving the new epoch when the drain completed.
    pub workers: usize,
    /// Worker slots that had exhausted their restart budget and stayed
    /// abandoned through the swap (0 in a healthy pool — a swap
    /// revives given-up slots with a fresh budget).
    pub given_up: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_bumps_epoch_and_swaps_factory() {
        let snaps: Snapshots<u32> = Snapshots::new(Arc::new(|| 1));
        assert_eq!(snaps.epoch(), 0);
        let (f, e) = snaps.current();
        assert_eq!((f(), e), (1, 0));
        let new_epoch = snaps.publish(Arc::new(|| 2));
        assert_eq!(new_epoch, 1);
        let (f, e) = snaps.current();
        assert_eq!((f(), e), (2, 1));
    }
}
