//! Versioned snapshot store for zero-downtime hot-swap.
//!
//! PMMRec is ID-free, so a model+catalog snapshot is plug-and-play:
//! swapping one in must not shed a single request. The store keeps the
//! current engine *factory* behind a mutex-guarded `Arc` plus an epoch
//! counter: [`Snapshots::publish`] flips both atomically (with respect
//! to [`Snapshots::current`]), and each worker rebuilds its own replica
//! from the new factory between requests — engines are `!Send` by
//! design, so "build off-thread" means *off the caller's thread*: the
//! swap caller never builds an engine and never blocks serving.
//!
//! In-flight requests keep the engine (and epoch tag) they started
//! with; `Server::swap_snapshot` waits until every live worker has
//! adopted the new epoch before returning, which is the drain the
//! `serve_swap_drain_ns` SLO budget meters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// The engine factory a worker rebuilds its replica from.
pub(crate) type Factory<E> = Arc<dyn Fn() -> E + Send + Sync>;

/// The versioned factory store shared by the server handle and every
/// worker.
pub(crate) struct Snapshots<E> {
    /// The factory plus the absolute delta-log index this snapshot's
    /// base already contains (items below the cut were folded into
    /// the base; a rebuilding worker applies only items at or past
    /// it). Stored together so a worker can never pair epoch N's
    /// factory with epoch N+1's cut.
    factory: Mutex<(Factory<E>, u64)>,
    epoch: AtomicU64,
}

impl<E> Snapshots<E> {
    /// Epoch 0 with the boot factory (nothing folded yet).
    pub(crate) fn new(factory: Factory<E>) -> Snapshots<E> {
        Snapshots { factory: Mutex::new((factory, 0)), epoch: AtomicU64::new(0) }
    }

    fn lock_factory(&self) -> MutexGuard<'_, (Factory<E>, u64)> {
        // The stored value is an Arc pointer plus a u64 — valid at
        // every instruction boundary — so a poisoned guard is safe to
        // adopt.
        self.factory.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The currently published epoch.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// A consistent `(factory, epoch, delta cut)` triple: all read
    /// under the factory lock, so a worker never builds epoch N's
    /// engine from epoch N+1's factory or cut, or vice versa.
    pub(crate) fn current(&self) -> (Factory<E>, u64, u64) {
        crate::race::yield_point("swap-current");
        let guard = self.lock_factory();
        let epoch = self.epoch.load(Ordering::Acquire);
        (Arc::clone(&guard.0), epoch, guard.1)
    }

    /// Publish a new factory whose base contains delta items below
    /// `delta_cut`, bumping the epoch. Returns the new epoch.
    pub(crate) fn publish(&self, factory: Factory<E>, delta_cut: u64) -> u64 {
        crate::race::yield_point("swap-publish");
        let mut guard = self.lock_factory();
        *guard = (factory, delta_cut);
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// The unpaired read [`Snapshots::current`] exists to prevent: the
    /// epoch sampled *outside* the factory lock, with a schedulable gap
    /// before the factory is read. The interleaving harness drives a
    /// publish through the gap to demonstrate a worker pairing epoch
    /// N's tag with epoch N+1's factory and cut.
    #[cfg(test)]
    pub(crate) fn race_current_unpaired(&self) -> (Factory<E>, u64, u64) {
        let epoch = self.epoch.load(Ordering::Acquire);
        crate::race::yield_point("unpaired-epoch-gap");
        let guard = self.lock_factory();
        (Arc::clone(&guard.0), epoch, guard.1)
    }

    /// The delta cut of the currently published snapshot.
    pub(crate) fn delta_cut(&self) -> u64 {
        self.lock_factory().1
    }
}

/// What a completed [`crate::Server::swap_snapshot`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapReport {
    /// The epoch the swap published; responses served from the new
    /// snapshot carry it.
    pub epoch: u64,
    /// Flip-to-drain time: from publishing the new factory until every
    /// live worker had adopted it.
    pub drain: Duration,
    /// Worker slots serving the new epoch when the drain completed.
    pub workers: usize,
    /// Worker slots that had exhausted their restart budget and stayed
    /// abandoned through the swap (0 in a healthy pool — a swap
    /// revives given-up slots with a fresh budget).
    pub given_up: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_bumps_epoch_and_swaps_factory() {
        let snaps: Snapshots<u32> = Snapshots::new(Arc::new(|| 1));
        assert_eq!(snaps.epoch(), 0);
        let (f, e, cut) = snaps.current();
        assert_eq!((f(), e, cut), (1, 0, 0));
        let new_epoch = snaps.publish(Arc::new(|| 2), 5);
        assert_eq!(new_epoch, 1);
        let (f, e, cut) = snaps.current();
        assert_eq!((f(), e, cut), (2, 1, 5));
        assert_eq!(snaps.delta_cut(), 5);
    }
}
