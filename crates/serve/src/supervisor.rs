//! Worker supervision: panic isolation, heartbeat watchdog, restart
//! and retry budgets, and the degraded floor drain.
//!
//! Every worker thread in the pool is owned by a supervisor thread.
//! The worker runs each request under `catch_unwind`, so a panicking
//! request fails *that request* into the tier ladder (retry once onto
//! a healthy worker if the retry budget allows, else the model-free
//! floor) instead of silently killing the thread. When a worker does
//! die — a panic poisons its engine replica, so the thread always
//! exits after one — the supervisor respawns it under an
//! exponential-backoff restart budget; a slot that exhausts the budget
//! is abandoned (breaker-style "open" state for compute capacity),
//! and when *every* slot is abandoned the server enters a degraded
//! mode where the supervisor itself drains the queue straight into the
//! cache/popularity floor: requests keep resolving, just without a
//! model.
//!
//! Liveness is watched, not assumed: workers stamp a heartbeat between
//! pipeline stages, and a busy worker whose heartbeat goes stale past
//! the wedge threshold is declared wedged — its in-flight request is
//! charged as a deadline miss, the thread is retired in place
//! (generation bump; it can never touch its old slot again), and a
//! replacement is spawned.
//!
//! Slot handoff is generation-guarded: every mutation of a slot's
//! busy/in-flight state is gated on the generation the worker was
//! spawned with, and both the reply claim and the watchdog's wedge
//! takeover serialize on the in-flight mutex. That is what makes the
//! "exactly one reply per request" invariant survive panics, wedges,
//! and respawns happening concurrently.

use crate::engine::ServeEngine;
use crate::queue::Popped;
use crate::server::{
    attempt_request, lock_clean, respond_floor, Job, ReplyCtx, Response, ServeError, Shared,
};
use crate::swap::Snapshots;
use pmm_obs::counter as ctr;
use pmm_trace::{Stage, TraceId, Tracer};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Supervision tuning.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Consecutive restarts a slot may burn before it is abandoned.
    pub max_restarts: u32,
    /// Base respawn delay; doubles per consecutive restart (capped at
    /// 1s) so a crash-looping snapshot cannot spin the supervisor.
    pub restart_backoff: Duration,
    /// A busy worker whose heartbeat is stale for `deadline ×
    /// wedge_multiple` is declared wedged.
    pub wedge_multiple: u32,
    /// Explicit wedge threshold; overrides `wedge_multiple` when set
    /// (tests use second-scale deadlines with millisecond stalls).
    pub wedge_after: Option<Duration>,
    /// Watchdog scan period (also the degraded drain cadence).
    pub watchdog_interval: Duration,
    /// Retries allowed per accepted request, long-run (the global
    /// retry-rate budget).
    pub retry_ratio: f64,
    /// Retries allowed before the ratio term kicks in, so a cold
    /// server can still retry its first faults.
    pub retry_burst: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_restarts: 5,
            restart_backoff: Duration::from_millis(10),
            wedge_multiple: 4,
            wedge_after: None,
            watchdog_interval: Duration::from_millis(20),
            retry_ratio: 0.10,
            retry_burst: 2,
        }
    }
}

impl SupervisorConfig {
    /// The effective wedge threshold for a server deadline.
    fn wedge_threshold(&self, deadline: Duration) -> Duration {
        self.wedge_after.unwrap_or(deadline * self.wedge_multiple.max(1))
    }
}

/// The reply-side half of a request a worker is currently running,
/// parked in its slot so the watchdog can answer for a wedged worker.
pub(crate) struct InFlight {
    pub(crate) reply: mpsc::Sender<Result<Response, ServeError>>,
    pub(crate) enqueued: Instant,
    pub(crate) trace: TraceId,
}

/// One worker position in the pool. The slot outlives any individual
/// thread occupying it; `generation` names the current tenant.
pub(crate) struct WorkerSlot {
    index: usize,
    /// Heartbeats are nanoseconds since this per-server origin, so the
    /// stamp can be a lock-free atomic.
    origin: Instant,
    generation: AtomicU64,
    heartbeat_ns: AtomicU64,
    busy: AtomicBool,
    /// Snapshot epoch of the engine the tenant currently serves;
    /// `u64::MAX` until the first build completes.
    engine_epoch: AtomicU64,
    /// Lifetime restarts of this slot (mirrors the labeled metric).
    restarts: AtomicU64,
    /// Consecutive failures; a clean job resets it.
    consec: AtomicU32,
    given_up: AtomicBool,
    inflight: Mutex<Option<InFlight>>,
}

impl WorkerSlot {
    pub(crate) fn new(index: usize, origin: Instant) -> WorkerSlot {
        WorkerSlot {
            index,
            origin,
            generation: AtomicU64::new(0),
            heartbeat_ns: AtomicU64::new(0),
            busy: AtomicBool::new(false),
            engine_epoch: AtomicU64::new(u64::MAX),
            restarts: AtomicU64::new(0),
            consec: AtomicU32::new(0),
            given_up: AtomicBool::new(false),
            inflight: Mutex::new(None),
        }
    }

    fn lock_inflight(&self) -> MutexGuard<'_, Option<InFlight>> {
        // An Option<InFlight> is valid at every instruction boundary,
        // so a poisoned guard is safe to adopt.
        self.inflight.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Whether `gen`'s tenancy has ended (wedge takeover or respawn).
    pub(crate) fn retired(&self, gen: u64) -> bool {
        self.generation() != gen
    }

    /// Stamp the heartbeat: "I made progress just now."
    pub(crate) fn stamp(&self) {
        self.heartbeat_ns.store(self.origin.elapsed().as_nanos() as u64, Ordering::Release);
    }

    fn stale_for(&self, now: Instant) -> Duration {
        let now_ns = now.duration_since(self.origin).as_nanos() as u64;
        Duration::from_nanos(now_ns.saturating_sub(self.heartbeat_ns.load(Ordering::Acquire)))
    }

    pub(crate) fn engine_epoch(&self) -> u64 {
        self.engine_epoch.load(Ordering::Acquire)
    }

    pub(crate) fn given_up(&self) -> bool {
        self.given_up.load(Ordering::Acquire)
    }

    pub(crate) fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Park the reply half of `job` so the watchdog can answer for us
    /// if we wedge mid-request.
    pub(crate) fn begin_job(&self, job: &Job) {
        crate::race::yield_point("slot-begin-job");
        let mut guard = self.lock_inflight();
        *guard = Some(InFlight {
            reply: job.reply.clone(),
            enqueued: job.enqueued,
            trace: job.trace,
        });
        drop(guard);
        self.busy.store(true, Ordering::Release);
        self.stamp();
    }

    /// Clear the busy flag after a job, generation-gated so a retired
    /// tenant cannot clear its replacement's state.
    pub(crate) fn end_job(&self, gen: u64) {
        crate::race::yield_point("slot-end-job");
        let mut guard = self.lock_inflight();
        if self.generation() == gen {
            *guard = None;
            drop(guard);
            self.busy.store(false, Ordering::Release);
        }
    }

    /// Claim the right to send this request's reply. Exactly one of
    /// {owning worker, watchdog} wins: both paths serialize on the
    /// in-flight mutex, and a retired generation never wins.
    pub(crate) fn claim_if(&self, gen: u64) -> bool {
        crate::race::yield_point("slot-claim");
        let mut guard = self.lock_inflight();
        if self.generation() != gen {
            return false;
        }
        guard.take().is_some()
    }

    /// Watchdog takeover of a wedged tenant: retire the generation and
    /// seize the in-flight reply (if the worker had not claimed it) in
    /// one critical section.
    pub(crate) fn wedge_take(&self) -> Option<InFlight> {
        crate::race::yield_point("slot-wedge-take");
        let mut guard = self.lock_inflight();
        self.generation.fetch_add(1, Ordering::AcqRel);
        let taken = guard.take();
        drop(guard);
        self.busy.store(false, Ordering::Release);
        taken
    }

    /// Install a new tenancy: bump the generation (retiring any
    /// stragglers) and reset per-tenant state. Returns the new
    /// generation.
    pub(crate) fn install_tenant(&self) -> u64 {
        crate::race::yield_point("slot-install-tenant");
        let mut guard = self.lock_inflight();
        let gen = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        *guard = None;
        drop(guard);
        self.busy.store(false, Ordering::Release);
        self.engine_epoch.store(u64::MAX, Ordering::Release);
        self.stamp();
        gen
    }

    /// Park `reply` as the slot's in-flight request without going
    /// through a full [`Job`], so the interleaving harness can stage
    /// the claim/wedge protocol in isolation.
    #[cfg(test)]
    pub(crate) fn race_park(&self, reply: mpsc::Sender<Result<Response, ServeError>>) {
        let mut guard = self.lock_inflight();
        *guard = Some(InFlight { reply, enqueued: Instant::now(), trace: TraceId(0) });
        drop(guard);
        self.busy.store(true, Ordering::Release);
    }

    /// The TOCTOU claim [`WorkerSlot::claim_if`] exists to prevent: the
    /// generation check and the reply grab are separate steps with a
    /// schedulable gap between them, and the reply is *cloned out*
    /// rather than taken, so a wedge takeover between the two steps
    /// leaves both sides holding a sender. The interleaving harness
    /// uses this to seed an exactly-one-reply violation.
    #[cfg(test)]
    pub(crate) fn race_claim_peek(
        &self,
        gen: u64,
    ) -> Option<mpsc::Sender<Result<Response, ServeError>>> {
        if self.retired(gen) {
            return None;
        }
        crate::race::yield_point("racy-claim-gap");
        let guard = self.lock_inflight();
        guard.as_ref().map(|f| f.reply.clone())
    }
}

/// Per-slot supervisor-side state (under the one supervisor lock).
struct SlotState {
    handle: Option<JoinHandle<()>>,
    /// When a pending respawn becomes due (backoff), if any.
    respawn_at: Option<Instant>,
}

struct SuperState {
    slots: Vec<SlotState>,
    /// Death notices from exiting workers: `(slot index, generation)`.
    dead: Vec<(usize, u64)>,
    /// Threads retired in place (wedged); joined at shutdown once the
    /// closed queue wakes them.
    zombies: Vec<JoinHandle<()>>,
}

impl SuperState {
    /// The supervisor-side state for worker `index`. Mirrors
    /// [`SuperCtl::slot`]: both vectors are sized at boot and never
    /// change length.
    fn slot_mut(&mut self, index: usize) -> &mut SlotState {
        // pmm-audit: allow(hot-index) — fixed at boot to n_workers entries; every stored worker index is in bounds
        &mut self.slots[index]
    }
}

/// The supervisor's shared control block.
pub(crate) struct SuperCtl {
    cfg: SupervisorConfig,
    /// Effective wedge threshold (resolved against the server
    /// deadline at boot).
    wedge_after: Duration,
    pub(crate) slots: Vec<WorkerSlot>,
    state: Mutex<SuperState>,
    wake: Condvar,
    shutdown: AtomicBool,
    degraded: AtomicBool,
    /// Accepted-request count feeding the retry-rate budget.
    accepted: AtomicU64,
    retries_spent: AtomicU64,
}

impl SuperCtl {
    fn lock_state(&self) -> MutexGuard<'_, SuperState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The shared slot for worker `index`. The slot vector is sized at
    /// boot and never changes length, so any worker index handed out
    /// by this module stays in bounds for the pool's lifetime.
    fn slot(&self, index: usize) -> &WorkerSlot {
        // pmm-audit: allow(hot-index) — fixed at boot to n_workers entries; every stored worker index is in bounds
        &self.slots[index]
    }

    /// Whether every slot has exhausted its restart budget.
    pub(crate) fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Count one accepted request toward the retry-rate denominator.
    pub(crate) fn note_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Try to spend one unit of the global retry budget:
    /// `burst + ratio × accepted` retries are allowed in total.
    pub(crate) fn try_spend_retry(&self) -> bool {
        let accepted = self.accepted.load(Ordering::Relaxed);
        let allowance =
            self.cfg.retry_burst + (accepted as f64 * self.cfg.retry_ratio) as u64;
        if self.retries_spent.fetch_add(1, Ordering::AcqRel) < allowance {
            true
        } else {
            self.retries_spent.fetch_sub(1, Ordering::AcqRel);
            false
        }
    }

    /// Death notice from an exiting worker; the supervisor schedules
    /// the respawn (or the give-up) on its next wake.
    fn notify_dead(&self, index: usize, gen: u64) {
        let mut st = self.lock_state();
        st.dead.push((index, gen));
        drop(st);
        self.wake.notify_all();
    }

    /// Give abandoned slots a fresh restart budget (a new snapshot is
    /// new code as far as crash loops are concerned) and clear the
    /// degraded flag. Called by `Server::swap_snapshot`.
    pub(crate) fn revive(&self) {
        let now = Instant::now();
        let mut st = self.lock_state();
        let mut revived = false;
        for (index, slot) in self.slots.iter().enumerate() {
            if slot.given_up() {
                slot.given_up.store(false, Ordering::Release);
                slot.consec.store(0, Ordering::Release);
                st.slot_mut(index).respawn_at = Some(now);
                revived = true;
            }
        }
        drop(st);
        if revived {
            self.degraded.store(false, Ordering::Release);
            self.wake.notify_all();
        }
    }

    /// Flag shutdown and wake the supervisor so it exits.
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.wake.notify_all();
    }

    /// Join every live worker and every retired zombie. The queue must
    /// already be closed so blocked workers wake and exit.
    pub(crate) fn join_workers(&self) {
        let mut st = self.lock_state();
        let mut handles: Vec<JoinHandle<()>> = st.zombies.drain(..).collect();
        for slot in &mut st.slots {
            if let Some(h) = slot.handle.take() {
                handles.push(h);
            }
        }
        drop(st);
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Boot the pool: `n_workers` supervised workers plus the supervisor
/// thread itself. This module is the only place serve threads are
/// spawned, so panic isolation and slot bookkeeping cannot be
/// bypassed.
pub(crate) fn boot<E: ServeEngine + 'static>(
    cfg: SupervisorConfig,
    deadline: Duration,
    shared: &Arc<Shared>,
    snaps: &Arc<Snapshots<E>>,
    n_workers: usize,
) -> (Arc<SuperCtl>, JoinHandle<()>) {
    let origin = Instant::now();
    let ctl = Arc::new(SuperCtl {
        cfg,
        wedge_after: cfg.wedge_threshold(deadline),
        slots: (0..n_workers).map(|i| WorkerSlot::new(i, origin)).collect(),
        state: Mutex::new(SuperState {
            slots: (0..n_workers).map(|_| SlotState { handle: None, respawn_at: None }).collect(),
            dead: Vec::new(),
            zombies: Vec::new(),
        }),
        wake: Condvar::new(),
        shutdown: AtomicBool::new(false),
        degraded: AtomicBool::new(false),
        accepted: AtomicU64::new(0),
        retries_spent: AtomicU64::new(0),
    });
    {
        let mut st = ctl.lock_state();
        for index in 0..n_workers {
            let handle = spawn_worker(&ctl, shared, snaps, index);
            st.slot_mut(index).handle = Some(handle);
        }
    }
    let supervisor = {
        let ctl = Arc::clone(&ctl);
        let shared = Arc::clone(shared);
        let snaps = Arc::clone(snaps);
        std::thread::Builder::new()
            .name("pmm-serve-super".to_string())
            .spawn(move || run_supervisor(&ctl, &shared, &snaps))
            // pmm-audit: allow(hot-unwrap) — pool startup, not the request path; a failed spawn means the server never comes up
            .expect("spawn serve supervisor")
    };
    (ctl, supervisor)
}

fn spawn_worker<E: ServeEngine + 'static>(
    ctl: &Arc<SuperCtl>,
    shared: &Arc<Shared>,
    snaps: &Arc<Snapshots<E>>,
    index: usize,
) -> JoinHandle<()> {
    let gen = ctl.slot(index).install_tenant();
    let ctl = Arc::clone(ctl);
    let shared = Arc::clone(shared);
    let snaps = Arc::clone(snaps);
    std::thread::Builder::new()
        .name(format!("pmm-serve-{index}"))
        .spawn(move || worker_loop(&ctl, &shared, &snaps, index, gen))
        // pmm-audit: allow(hot-unwrap) — a failed thread spawn means the OS is out of resources; no in-request path reaches here
        .expect("spawn serve worker")
}

/// One worker tenancy: build an engine replica from the current
/// snapshot, serve jobs under `catch_unwind`, rebuild when the
/// snapshot epoch moves, and exit (with a death notice) after any
/// panic — a panic may have corrupted the replica, so the thread never
/// serves another request with it.
fn worker_loop<E: ServeEngine>(
    ctl: &Arc<SuperCtl>,
    shared: &Arc<Shared>,
    snaps: &Arc<Snapshots<E>>,
    index: usize,
    gen: u64,
) {
    let slot = &ctl.slot(index);
    let mut seen_pokes = shared.queue.pokes();
    // (replica, epoch, absolute delta position applied to it). A fresh
    // build starts at the snapshot's fold cut — its base already
    // contains everything below it.
    let mut engine: Option<(E, u64, u64)> = None;
    loop {
        if slot.retired(gen) {
            // Wedge takeover: the slot belongs to a replacement now.
            return;
        }
        let needs_build = match &engine {
            None => true,
            Some((_, epoch, _)) => *epoch != snaps.epoch(),
        };
        if needs_build {
            let (factory, epoch, cut) = snaps.current();
            match catch_unwind(AssertUnwindSafe(|| factory())) {
                Ok(e) => {
                    engine = Some((e, epoch, cut));
                    slot.engine_epoch.store(epoch, Ordering::Release);
                    slot.stamp();
                }
                Err(_) => {
                    ctr::SERVE_PANICS.add(1);
                    ctl.notify_dead(index, gen);
                    return;
                }
            }
            // Re-check the epoch: a publish may have raced the build.
            continue;
        }
        let Some((eng, epoch, applied)) = &mut engine else { continue };
        // Catch up on streamed deltas before serving: clone the unseen
        // suffix of the shared log under its lock, apply it outside.
        let pending = {
            let delta = lock_clean(&shared.delta);
            let pending = delta.pending(*applied);
            *applied = delta.total();
            pending
        };
        if !pending.is_empty() {
            eng.apply_delta(&pending);
            slot.stamp();
        }
        match shared.queue.pop_or_poke(&mut seen_pokes) {
            Popped::Closed => return,
            Popped::Poke => continue,
            Popped::Item(job) => {
                slot.stamp();
                if !run_job(eng, *epoch, shared, ctl, slot, gen, job) {
                    ctl.notify_dead(index, gen);
                    return;
                }
            }
        }
    }
}

/// Run one job with panic isolation. Returns `false` when the worker
/// must die (a request panicked under it).
fn run_job<E: ServeEngine>(
    engine: &E,
    epoch: u64,
    shared: &Shared,
    ctl: &SuperCtl,
    slot: &WorkerSlot,
    gen: u64,
    job: Job,
) -> bool {
    slot.begin_job(&job);
    let mut tracer = Tracer::resume(job.trace, job.resume_seq);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        attempt_request(engine, epoch, shared, slot, gen, &job, &mut tracer);
    }));
    match outcome {
        Ok(()) => {
            slot.end_job(gen);
            slot.consec.store(0, Ordering::Release);
            true
        }
        Err(_) => {
            ctr::SERVE_PANICS.add(1);
            recover_panicked_job(shared, ctl, slot, gen, job, tracer, epoch);
            false
        }
    }
}

/// A request panicked under us: fail *the request* into the ladder —
/// retry once onto a healthy worker if the budget allows, else serve
/// the model-free floor — while this worker dies.
fn recover_panicked_job(
    shared: &Shared,
    ctl: &SuperCtl,
    slot: &WorkerSlot,
    gen: u64,
    mut job: Job,
    mut tracer: Tracer,
    epoch: u64,
) {
    if !slot.claim_if(gen) {
        // The watchdog already answered for us (or the reply went out
        // before the panic); nothing left to do for this request.
        return;
    }
    slot.end_job(gen);
    if job.retries == 0 && ctl.try_spend_retry() {
        ctr::SERVE_RETRIES.add(1);
        tracer.instant(Stage::Retry, "requeue", "panic");
        job.retries += 1;
        job.resume_seq = tracer.seq();
        match shared.queue.try_requeue(job) {
            Ok(_) => return,
            Err(returned) => {
                // Queue full or closed: the retry has nowhere to run;
                // fall through to the floor with the returned job.
                job = returned;
            }
        }
    } else {
        ctr::SERVE_RETRIES_DENIED.add(1);
        tracer.instant(Stage::Retry, "deny", "budget");
    }
    let request_clock = tracer.begin(Stage::Request);
    respond_floor(shared, &ReplyCtx { owner: None, epoch }, &mut tracer, request_clock, &job);
}

/// The supervisor loop: watchdog scans, death-notice processing,
/// backoff-gated respawns, and (when every slot is abandoned) the
/// degraded floor drain.
fn run_supervisor<E: ServeEngine + 'static>(
    ctl: &Arc<SuperCtl>,
    shared: &Arc<Shared>,
    snaps: &Arc<Snapshots<E>>,
) {
    loop {
        {
            let st = ctl.lock_state();
            let (st, _) = ctl
                .wake
                .wait_timeout(st, ctl.cfg.watchdog_interval)
                .unwrap_or_else(PoisonError::into_inner);
            drop(st);
        }
        if ctl.shutting_down() {
            return;
        }
        scan_for_wedged(ctl);
        process_deaths(ctl);
        respawn_due(ctl, shared, snaps);
        if ctl.degraded() {
            drain_degraded(ctl, shared, snaps.epoch());
        }
    }
}

/// Declare busy workers with stale heartbeats wedged: charge the
/// in-flight request as a deadline miss, retire the thread in place,
/// and schedule a replacement.
fn scan_for_wedged(ctl: &Arc<SuperCtl>) {
    let now = Instant::now();
    for (index, slot) in ctl.slots.iter().enumerate() {
        if !slot.busy.load(Ordering::Acquire) || slot.stale_for(now) < ctl.wedge_after {
            continue;
        }
        let inflight = slot.wedge_take();
        ctr::SERVE_WEDGES.add(1);
        if pmm_obs::enabled() {
            let victim = inflight
                .as_ref()
                .map_or_else(|| "idle".to_string(), |f| f.trace.to_string());
            let mut t = Tracer::start();
            t.instant(Stage::Restart, "wedged", &format!("worker={} victim={victim}", slot.index));
        }
        if let Some(inflight) = inflight {
            // The wedged worker never answered: the supervisor does,
            // charging the stall as a deadline miss so the SLO window
            // sees it.
            ctr::SERVE_DEADLINE_MISSES.add(1);
            pmm_trace::hist::H_TOTAL.observe(inflight.enqueued.elapsed());
            let _ = inflight.reply.send(Err(ServeError::DeadlineExceeded { stage: "wedged" }));
        }
        let mut st = ctl.lock_state();
        if let Some(h) = st.slot_mut(index).handle.take() {
            // The thread is alive but disowned; it exits at its next
            // retirement check and is joined at shutdown.
            st.zombies.push(h);
        }
        schedule_respawn(ctl, &mut st, index, now);
    }
}

/// Drain death notices (panic exits) into pending respawns.
fn process_deaths(ctl: &Arc<SuperCtl>) {
    let now = Instant::now();
    let mut st = ctl.lock_state();
    let dead: Vec<(usize, u64)> = st.dead.drain(..).collect();
    for (index, gen) in dead {
        if ctl.slot(index).generation() != gen {
            // A stale notice from an already-retired tenant; its
            // handle is in the zombie list.
            continue;
        }
        if let Some(h) = st.slot_mut(index).handle.take() {
            // The worker announced death as its last act; the join is
            // immediate.
            // pmm-audit: allow(guard-across-blocking) — the joined thread pushed its death notice as its final statement and never takes the supervisor state lock on its exit path, so the join returns immediately and cannot deadlock against the guard
            let _ = h.join();
        }
        schedule_respawn(ctl, &mut st, index, now);
    }
}

/// Arm a slot's respawn timer, or abandon the slot when the restart
/// budget is spent. Caller holds the state lock.
fn schedule_respawn(ctl: &Arc<SuperCtl>, st: &mut SuperState, index: usize, now: Instant) {
    let slot = &ctl.slot(index);
    if slot.given_up() || st.slot_mut(index).respawn_at.is_some() {
        return;
    }
    let consec = slot.consec.fetch_add(1, Ordering::AcqRel) + 1;
    if consec > ctl.cfg.max_restarts {
        slot.given_up.store(true, Ordering::Release);
        ctr::SERVE_GIVEUPS.add(1);
        if pmm_obs::enabled() {
            let mut t = Tracer::start();
            t.instant(Stage::Restart, "give_up", &format!("worker={index} consec={consec}"));
        }
        if ctl.slots.iter().all(WorkerSlot::given_up) {
            ctl.degraded.store(true, Ordering::Release);
        }
        return;
    }
    // Exponential backoff: base × 2^(consec-1), capped at 1s.
    let exp = consec.saturating_sub(1).min(16);
    let delay = ctl
        .cfg
        .restart_backoff
        .saturating_mul(1u32 << exp)
        .min(Duration::from_secs(1));
    st.slot_mut(index).respawn_at = Some(now + delay);
}

/// Spawn replacements whose backoff has elapsed.
fn respawn_due<E: ServeEngine + 'static>(
    ctl: &Arc<SuperCtl>,
    shared: &Arc<Shared>,
    snaps: &Arc<Snapshots<E>>,
) {
    let now = Instant::now();
    let mut st = ctl.lock_state();
    for index in 0..ctl.slots.len() {
        let due = matches!(st.slot_mut(index).respawn_at, Some(at) if at <= now);
        if !due || ctl.slot(index).given_up() {
            continue;
        }
        st.slot_mut(index).respawn_at = None;
        ctr::SERVE_WORKER_RESTARTS.add(1);
        pmm_trace::metrics::workers::record_restart(index);
        let slot = &ctl.slot(index);
        slot.restarts.fetch_add(1, Ordering::Relaxed);
        if pmm_obs::enabled() {
            let mut t = Tracer::start();
            t.instant(
                Stage::Restart,
                "respawn",
                &format!("worker={index} consec={}", slot.consec.load(Ordering::Acquire)),
            );
        }
        let handle = spawn_worker(ctl, shared, snaps, index);
        st.slot_mut(index).handle = Some(handle);
    }
}

/// Every slot is abandoned: the supervisor itself keeps requests
/// resolving from the model-free floor until a snapshot swap revives
/// the pool.
fn drain_degraded(ctl: &Arc<SuperCtl>, shared: &Arc<Shared>, epoch: u64) {
    while let Some(job) = shared.queue.try_pop() {
        if ctl.shutting_down() {
            return;
        }
        let mut tracer = Tracer::resume(job.trace, job.resume_seq);
        let request_clock = tracer.begin(Stage::Request);
        tracer.observe(Stage::Queue, job.enqueued.elapsed(), "ok", "degraded");
        respond_floor(shared, &ReplyCtx { owner: None, epoch }, &mut tracer, request_clock, &job);
    }
}
