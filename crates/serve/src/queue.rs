//! Bounded MPMC work queue with explicit backpressure.
//!
//! The queue is the server's only buffer: when it is full, enqueue
//! fails immediately with the observed depth (load shedding) instead
//! of blocking the caller or growing without bound. A `pause` switch
//! holds workers off the queue so tests can fill it to capacity
//! deterministically before releasing the floodgate.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

struct Inner<T> {
    items: VecDeque<T>,
    paused: bool,
    closed: bool,
}

/// A mutex+condvar MPMC queue with a hard capacity.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Locks the queue state, recovering from poison: a worker
    /// panicking mid-request must not wedge the whole server, and the
    /// queue's state (a deque plus two flags) is valid at every
    /// instruction boundary, so the poisoned guard is safe to adopt.
    fn lock_inner(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// An empty queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::new(), paused: false, closed: false }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The hard capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (racy by nature; exact under `pause`).
    pub fn depth(&self) -> usize {
        self.lock_inner().items.len()
    }

    /// Attempts to enqueue without blocking. Returns the depth after
    /// the push, or `Err(depth)` when the queue is full or closed —
    /// the caller sheds the request.
    pub fn try_push(&self, item: T) -> Result<usize, usize> {
        let mut inner = self.lock_inner();
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(inner.items.len());
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        pmm_obs::counter::record_queue_depth(depth as u64);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available (and the queue is unpaused),
    /// or returns `None` once the queue is closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock_inner();
        loop {
            if inner.closed {
                // Drain whatever is left so no accepted request is lost.
                return inner.items.pop_front();
            }
            if !inner.paused {
                if let Some(item) = inner.items.pop_front() {
                    return Some(item);
                }
            }
            inner = self.ready.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Holds workers off the queue (`true`) or releases them. Producers
    /// are unaffected, so a paused queue fills to capacity and then
    /// sheds — the deterministic overflow scenario.
    pub fn set_paused(&self, paused: bool) {
        let mut inner = self.lock_inner();
        inner.paused = paused;
        drop(inner);
        self.ready.notify_all();
    }

    /// Closes the queue: producers are rejected from now on, consumers
    /// drain the remaining items and then observe `None`.
    pub fn close(&self) {
        let mut inner = self.lock_inner();
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_roundtrip() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds_with_depth() {
        let q = BoundedQueue::new(2);
        q.set_paused(true);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(2), "overflow reports the observed depth");
        assert_eq!(q.depth(), 2, "the shed push left no trace");
    }

    #[test]
    fn paused_queue_holds_consumers_until_released() {
        let q = Arc::new(BoundedQueue::new(4));
        q.set_paused(true);
        q.try_push(7).unwrap();
        let qc = Arc::clone(&q);
        let consumer = std::thread::spawn(move || qc.pop());
        // The consumer cannot make progress while paused; releasing the
        // pause hands it the item.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.depth(), 1);
        q.set_paused(false);
        assert_eq!(consumer.join().unwrap(), Some(7));
    }

    #[test]
    fn close_drains_then_terminates() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert!(q.try_push(3).is_err(), "closed queue rejects producers");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "drained + closed terminates consumers");
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let qc = Arc::clone(&q);
        let consumer = std::thread::spawn(move || qc.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }
}
