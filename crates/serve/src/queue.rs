//! Bounded MPMC work queue with explicit backpressure.
//!
//! The queue is the server's only buffer: when it is full, enqueue
//! fails immediately with the observed depth (load shedding) instead
//! of blocking the caller or growing without bound. A `pause` switch
//! holds workers off the queue so tests can fill it to capacity
//! deterministically before releasing the floodgate.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

struct Inner<T> {
    items: VecDeque<T>,
    paused: bool,
    closed: bool,
    /// Monotonic wake-up counter: bumped by [`BoundedQueue::poke`] so
    /// consumers blocked in [`BoundedQueue::pop_or_poke`] wake even
    /// with no item to hand out (e.g. to adopt a new snapshot epoch).
    pokes: u64,
}

/// What [`BoundedQueue::pop_or_poke`] handed back.
#[derive(Debug, PartialEq, Eq)]
pub enum Popped<T> {
    /// An item to process.
    Item(T),
    /// No item, but the poke counter advanced: re-check loop-level
    /// state (snapshot epoch, retirement) and come back.
    Poke,
    /// Closed and drained; the consumer should exit.
    Closed,
}

/// A mutex+condvar MPMC queue with a hard capacity.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Locks the queue state, recovering from poison: a worker
    /// panicking mid-request must not wedge the whole server, and the
    /// queue's state (a deque plus two flags) is valid at every
    /// instruction boundary, so the poisoned guard is safe to adopt.
    fn lock_inner(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// An empty queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                paused: false,
                closed: false,
                pokes: 0,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The hard capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (racy by nature; exact under `pause`).
    pub fn depth(&self) -> usize {
        self.lock_inner().items.len()
    }

    /// Attempts to enqueue without blocking. Returns the depth after
    /// the push, or `Err(depth)` when the queue is full or closed —
    /// the caller sheds the request.
    pub fn try_push(&self, item: T) -> Result<usize, usize> {
        let mut inner = self.lock_inner();
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(inner.items.len());
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        pmm_obs::counter::record_queue_depth(depth as u64);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Like [`BoundedQueue::try_push`], but hands the item back on
    /// failure instead of dropping it — the retry path re-enqueues a
    /// recovered job and must be able to floor-serve it when the queue
    /// is full or closed.
    pub fn try_requeue(&self, item: T) -> Result<usize, T> {
        let mut inner = self.lock_inner();
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        pmm_obs::counter::record_queue_depth(depth as u64);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available (and the queue is unpaused),
    /// or returns `None` once the queue is closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock_inner();
        loop {
            if inner.closed {
                // Drain whatever is left so no accepted request is lost.
                return inner.items.pop_front();
            }
            if !inner.paused {
                if let Some(item) = inner.items.pop_front() {
                    return Some(item);
                }
            }
            inner = self.ready.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// [`BoundedQueue::pop`] that also wakes for pokes: when the poke
    /// counter has advanced past `seen_pokes` the call returns
    /// [`Popped::Poke`] (updating `seen_pokes`) *before* handing out an
    /// item, so the consumer re-checks its loop-level state — snapshot
    /// epoch, retirement — with priority over new work.
    pub fn pop_or_poke(&self, seen_pokes: &mut u64) -> Popped<T> {
        let mut inner = self.lock_inner();
        loop {
            if inner.closed {
                return match inner.items.pop_front() {
                    Some(item) => Popped::Item(item),
                    None => Popped::Closed,
                };
            }
            if inner.pokes != *seen_pokes {
                *seen_pokes = inner.pokes;
                return Popped::Poke;
            }
            if !inner.paused {
                if let Some(item) = inner.items.pop_front() {
                    return Popped::Item(item);
                }
            }
            inner = self.ready.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking pop that ignores the pause switch — the degraded
    /// server's floor drain, where no workers remain to respect the
    /// pause semantics anyway.
    pub fn try_pop(&self) -> Option<T> {
        self.lock_inner().items.pop_front()
    }

    /// Wakes every consumer blocked in [`BoundedQueue::pop_or_poke`]
    /// without enqueuing anything.
    pub fn poke(&self) {
        let mut inner = self.lock_inner();
        inner.pokes += 1;
        drop(inner);
        self.ready.notify_all();
    }

    /// The current poke counter; consumers snapshot it before their
    /// first [`BoundedQueue::pop_or_poke`].
    pub fn pokes(&self) -> u64 {
        self.lock_inner().pokes
    }

    /// Holds workers off the queue (`true`) or releases them. Producers
    /// are unaffected, so a paused queue fills to capacity and then
    /// sheds — the deterministic overflow scenario.
    pub fn set_paused(&self, paused: bool) {
        let mut inner = self.lock_inner();
        inner.paused = paused;
        drop(inner);
        self.ready.notify_all();
    }

    /// Closes the queue: producers are rejected from now on, consumers
    /// drain the remaining items and then observe `None`.
    pub fn close(&self) {
        let mut inner = self.lock_inner();
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_roundtrip() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds_with_depth() {
        let q = BoundedQueue::new(2);
        q.set_paused(true);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(2), "overflow reports the observed depth");
        assert_eq!(q.depth(), 2, "the shed push left no trace");
    }

    #[test]
    fn paused_queue_holds_consumers_until_released() {
        let q = Arc::new(BoundedQueue::new(4));
        q.set_paused(true);
        q.try_push(7).unwrap();
        let qc = Arc::clone(&q);
        let consumer = std::thread::spawn(move || qc.pop());
        // The consumer cannot make progress while paused; releasing the
        // pause hands it the item.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.depth(), 1);
        q.set_paused(false);
        assert_eq!(consumer.join().unwrap(), Some(7));
    }

    #[test]
    fn close_drains_then_terminates() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert!(q.try_push(3).is_err(), "closed queue rejects producers");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "drained + closed terminates consumers");
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let qc = Arc::clone(&q);
        let consumer = std::thread::spawn(move || qc.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn close_races_concurrent_producers_without_losing_accepted_items() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // Producers hammer the queue while it closes mid-stream: every
        // push that reported Ok must still be drainable afterwards
        // (the accepted-implies-served contract), and every post-close
        // push must have reported Err.
        let q: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::new(4096));
        let accepted = Arc::new(AtomicU64::new(0));
        let producers: Vec<_> = (0..4)
            .map(|t| {
                let q = Arc::clone(&q);
                let accepted = Arc::clone(&accepted);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        if q.try_push(t * 1000 + i).is_ok() {
                            accepted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(1));
        q.close();
        for p in producers {
            p.join().expect("producer");
        }
        let mut drained = 0u64;
        while q.pop().is_some() {
            drained += 1;
        }
        assert_eq!(
            drained,
            accepted.load(Ordering::Relaxed),
            "every accepted item drains; every rejected item stayed out"
        );
        assert!(q.try_push(9).is_err(), "the queue stays closed");
    }

    #[test]
    fn poke_interrupts_pop_or_poke_ahead_of_items() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        let mut seen = q.pokes();
        q.try_push(1).unwrap();
        q.poke();
        // The poke outranks the waiting item so consumers re-check
        // loop-level state first, then the item is handed out.
        assert_eq!(q.pop_or_poke(&mut seen), Popped::Poke);
        assert_eq!(q.pop_or_poke(&mut seen), Popped::Item(1));
        q.close();
        assert_eq!(q.pop_or_poke(&mut seen), Popped::Closed);
    }

    #[test]
    fn try_requeue_hands_the_item_back_on_full_or_closed() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        assert_eq!(q.try_requeue(1), Ok(1));
        assert_eq!(q.try_requeue(2), Err(2), "a full queue returns the item");
        let q2: BoundedQueue<u32> = BoundedQueue::new(4);
        q2.close();
        assert_eq!(q2.try_requeue(3), Err(3), "a closed queue returns the item");
        // try_pop ignores the pause switch (degraded drain).
        q.set_paused(true);
        assert_eq!(q.try_pop(), Some(1));
    }
}
