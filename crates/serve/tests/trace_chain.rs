//! A served request's trace events must reconstruct into one causal
//! chain: the TraceId minted at enqueue rides the job through every
//! stage, and the buffered events — filtered by that id — come back
//! contiguous, ordered, and complete.
//!
//! The event ring and the obs enable flag are process globals, so this
//! lives in its own integration-test binary with a single `#[test]`.

use pmm_baselines::Popularity;
use pmm_serve::{BreakerConfig, PmmEngine, Request, Server, ServerConfig, ShardConfig, Tier};
use pmm_trace::{ring, TraceEvent};
use pmmrec::{PmmRec, PmmRecConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn dataset() -> pmm_data::dataset::Dataset {
    let world = pmm_data::world::World::new(pmm_data::world::WorldConfig::default());
    pmm_data::registry::build_dataset(
        &world,
        pmm_data::registry::DatasetId::HmClothes,
        pmm_data::Scale::Tiny,
        42,
    )
}

fn model(ds: &pmm_data::dataset::Dataset) -> PmmRec {
    let cfg = PmmRecConfig {
        d: 16,
        heads: 2,
        text_layers: 1,
        vision_layers: 1,
        fusion_layers: 1,
        user_layers: 1,
        dropout: 0.0,
        ..Default::default()
    };
    PmmRec::new(cfg, ds, &mut StdRng::seed_from_u64(7))
}

#[test]
fn served_request_events_reconstruct_one_causal_chain() {
    let _fg = pmm_fault::test_guard();
    pmm_obs::set_enabled(true);
    ring::clear();

    let ds = dataset();
    let popularity = Popularity::from_sequences(ds.items.len(), &ds.sequences);
    let ds_f = ds.clone();
    let server = Server::start(
        ServerConfig {
            workers: Some(1),
            // One shard: the scatter-gather contributes exactly one
            // deterministic shard event to the chain.
            shards: ShardConfig { shards: Some(1), ..Default::default() },
            deadline: Duration::from_secs(60),
            breaker: BreakerConfig { window: 4, trip_failures: 1, cooldown_denials: 1000 },
            ..ServerConfig::default()
        },
        move || PmmEngine::new(model(&ds_f)),
        popularity,
    );

    let handle = server
        .submit(Request { user: 1, prefix: vec![0, 1, 2], k: 5, exclude_seen: true, deadline: None })
        .expect("healthy submit is accepted");
    let trace = handle.trace;
    let resp = handle.wait().expect("healthy request serves");
    assert_eq!(resp.trace, trace, "response carries the handle's trace id");
    assert_eq!(resp.tier, Tier::Full);
    server.shutdown();

    // Reconstruct: filter by trace id, order by seq. Ring order is
    // push order, and the submit-side enqueue event races the worker's
    // first events, so seq — not arrival — carries the causal order.
    let mut chain: Vec<TraceEvent> =
        ring::snapshot().into_iter().filter(|e| e.trace == trace).collect();
    chain.sort_by_key(|e| e.seq);
    assert!(!chain.is_empty(), "the request left trace events");

    // One contiguous chain, starting at the submit-side enqueue event.
    let seqs: Vec<u32> = chain.iter().map(|e| e.seq).collect();
    let want: Vec<u32> = (0..chain.len() as u32).collect();
    assert_eq!(seqs, want, "sequence numbers are contiguous from 0");

    let stages: Vec<&str> = chain.iter().map(|e| e.stage).collect();
    assert_eq!(
        stages,
        vec![
            "enqueue",
            "queue_wait",
            "tier",
            "encode",
            "user_encode",
            "shard",
            "rank",
            "respond",
            "request"
        ],
        "a healthy full-tier request walks every stage exactly once",
    );
    assert_eq!(chain[0].outcome, "accepted");
    assert!(chain[0].detail.starts_with("depth="), "enqueue records the queue depth");
    assert_eq!(chain[2].detail, Tier::Full.label(), "the attempted rung is recorded");
    assert_eq!(chain[5].detail, "shard=0", "the scatter-gather records its one shard");
    let respond = &chain[7];
    assert_eq!(respond.outcome, "ok");
    assert_eq!(respond.detail, Tier::Full.label(), "the reply is tier-tagged");

    // Timed stages carry durations; the worker-side chain is causally
    // ordered in time. Excluded: enqueue (submitter clock), queue_wait
    // (start backdated by its duration), the shard event (observed
    // with a measured duration but a backdated start), and the
    // trailing request event (emitted last, started at handler entry).
    for e in [&chain[3], &chain[4], &chain[6], &chain[8]] {
        assert!(e.dur_ns > 0, "{} records a duration", e.stage);
    }
    assert!(
        chain[2..5].windows(2).all(|w| w[0].start_ns <= w[1].start_ns),
        "worker events are time-ordered: {chain:#?}",
    );
    // The request event spans its stages: it starts no later than the
    // encode stage and lasts at least as long as encode + rank.
    let request = &chain[8];
    assert!(request.start_ns <= chain[3].start_ns);
    assert!(request.dur_ns >= chain[3].dur_ns + chain[6].dur_ns);

    pmm_obs::set_enabled(false);
}
