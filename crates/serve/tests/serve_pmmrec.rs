//! End-to-end serving over the real model: served responses must be
//! bit-identical to direct `recommend_top_k` calls at every worker
//! count, and injected encoder faults must walk the ladder.

use pmm_baselines::Popularity;
use pmm_serve::{
    BreakerConfig, Component, PmmEngine, Request, Server, ServerConfig, Tier,
};
use pmmrec::{PmmRec, PmmRecConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn dataset() -> pmm_data::dataset::Dataset {
    let world = pmm_data::world::World::new(pmm_data::world::WorldConfig::default());
    pmm_data::registry::build_dataset(
        &world,
        pmm_data::registry::DatasetId::HmClothes,
        pmm_data::Scale::Tiny,
        42,
    )
}

fn model(ds: &pmm_data::dataset::Dataset) -> PmmRec {
    let cfg = PmmRecConfig {
        d: 16,
        heads: 2,
        text_layers: 1,
        vision_layers: 1,
        fusion_layers: 1,
        user_layers: 1,
        dropout: 0.0,
        ..Default::default()
    };
    // Same seed -> bit-identical weights in every replica.
    PmmRec::new(cfg, ds, &mut StdRng::seed_from_u64(7))
}

fn server_cfg(workers: usize) -> ServerConfig {
    ServerConfig {
        workers: Some(workers),
        deadline: Duration::from_secs(60),
        breaker: BreakerConfig { window: 4, trip_failures: 1, cooldown_denials: 1000 },
        ..ServerConfig::default()
    }
}

fn popularity(ds: &pmm_data::dataset::Dataset) -> Popularity {
    Popularity::from_sequences(ds.items.len(), &ds.sequences)
}

#[test]
fn served_topk_is_bit_identical_to_direct_calls_at_every_worker_count() {
    let _fg = pmm_fault::test_guard();
    let ds = dataset();
    let reference = model(&ds);
    let prefixes: Vec<Vec<usize>> = vec![vec![0, 1, 2], vec![3], vec![1, 4, 2, 0], vec![5, 5]];
    let direct: Vec<Vec<pmmrec::Recommendation>> = prefixes
        .iter()
        .map(|p| reference.recommend_top_k(p, 5, true).unwrap())
        .collect();

    for workers in [1usize, 2, 4] {
        let ds_f = ds.clone();
        let server = Server::start(
            server_cfg(workers),
            move || PmmEngine::new(model(&ds_f)),
            popularity(&ds),
        );
        for (p, want) in prefixes.iter().zip(&direct) {
            let resp = server.call(Request {
                user: 1,
                prefix: p.clone(),
                k: 5,
                exclude_seen: true,
                deadline: None,
            })
            .unwrap();
            assert_eq!(resp.tier, Tier::Full, "workers={workers}");
            assert_eq!(&resp.items, want, "workers={workers} prefix={p:?}");
        }
        server.shutdown();
    }
}

#[test]
fn injected_encoder_error_degrades_to_a_single_modality_tier() {
    let _fg = pmm_fault::test_guard();
    let ds = dataset();
    pmm_fault::install(pmm_fault::FaultPlan::parse("err@0").unwrap());
    let ds_f = ds.clone();
    let server = Server::start(
        server_cfg(1),
        move || PmmEngine::new(model(&ds_f)),
        popularity(&ds),
    );
    // Full rung errs on the text gate -> text breaker opens ->
    // TextOnly denied -> VisionOnly serves.
    let resp = server.call(Request::new(1, vec![0, 1, 2], 5)).unwrap();
    assert_eq!(resp.tier, Tier::VisionOnly);
    assert!(resp.items.iter().all(|r| r.score.is_finite()));
    assert_eq!(
        server.breaker_state(Component::TextEncoder),
        pmm_serve::BreakerState::Open
    );
    // The vision-rung answer matches the model's own vision-only path.
    let reference = model(&ds);
    let cat = reference.serve_catalog(pmmrec::Modality::VisionOnly).unwrap();
    let user = reference.serve_user_vector(&cat, &[0, 1, 2]).unwrap();
    let want = reference.serve_rank(&cat, &user, &[0, 1, 2], 5, false);
    pmm_fault::clear();
    assert_eq!(resp.items, want);
}
