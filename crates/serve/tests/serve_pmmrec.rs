//! End-to-end serving over the real model: served responses must be
//! bit-identical to direct `recommend_top_k` calls at every worker
//! count, injected encoder faults must walk the ladder, a worker
//! panic mid-request must resolve through supervision, and a snapshot
//! hot-swap under load must not shed a request.

use pmm_baselines::Popularity;
use pmm_serve::{
    BreakerConfig, Component, PmmEngine, Request, Server, ServerConfig, SupervisorConfig, Tier,
};
use pmmrec::{PmmRec, PmmRecConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn dataset() -> pmm_data::dataset::Dataset {
    let world = pmm_data::world::World::new(pmm_data::world::WorldConfig::default());
    pmm_data::registry::build_dataset(
        &world,
        pmm_data::registry::DatasetId::HmClothes,
        pmm_data::Scale::Tiny,
        42,
    )
}

fn model_seeded(ds: &pmm_data::dataset::Dataset, seed: u64) -> PmmRec {
    let cfg = PmmRecConfig {
        d: 16,
        heads: 2,
        text_layers: 1,
        vision_layers: 1,
        fusion_layers: 1,
        user_layers: 1,
        dropout: 0.0,
        ..Default::default()
    };
    // Same seed -> bit-identical weights in every replica.
    PmmRec::new(cfg, ds, &mut StdRng::seed_from_u64(seed))
}

fn model(ds: &pmm_data::dataset::Dataset) -> PmmRec {
    model_seeded(ds, 7)
}

fn server_cfg(workers: usize) -> ServerConfig {
    ServerConfig {
        workers: Some(workers),
        deadline: Duration::from_secs(60),
        breaker: BreakerConfig { window: 4, trip_failures: 1, cooldown_denials: 1000 },
        ..ServerConfig::default()
    }
}

fn popularity(ds: &pmm_data::dataset::Dataset) -> Popularity {
    Popularity::from_sequences(ds.items.len(), &ds.sequences)
}

#[test]
fn served_topk_is_bit_identical_to_direct_calls_at_every_worker_count() {
    let _fg = pmm_fault::test_guard();
    let ds = dataset();
    let reference = model(&ds);
    let prefixes: Vec<Vec<usize>> = vec![vec![0, 1, 2], vec![3], vec![1, 4, 2, 0], vec![5, 5]];
    let direct: Vec<Vec<pmmrec::Recommendation>> = prefixes
        .iter()
        .map(|p| reference.recommend_top_k(p, 5, true).unwrap())
        .collect();

    for workers in [1usize, 2, 4] {
        let ds_f = ds.clone();
        let server = Server::start(
            server_cfg(workers),
            move || PmmEngine::new(model(&ds_f)),
            popularity(&ds),
        );
        for (p, want) in prefixes.iter().zip(&direct) {
            let resp = server.call(Request {
                user: 1,
                prefix: p.clone(),
                k: 5,
                exclude_seen: true,
                deadline: None,
            })
            .unwrap();
            assert_eq!(resp.tier, Tier::Full, "workers={workers}");
            assert_eq!(&resp.items, want, "workers={workers} prefix={p:?}");
        }
        server.shutdown();
    }
}

#[test]
fn int8_engines_serve_the_quantized_rank_bit_identically_at_every_worker_count() {
    let _fg = pmm_fault::test_guard();
    let ds = dataset();
    let reference = model(&ds);
    let prefixes: Vec<Vec<usize>> = vec![vec![0, 1, 2], vec![3], vec![1, 4, 2, 0]];
    let direct: Vec<Vec<pmmrec::Recommendation>> = prefixes
        .iter()
        .map(|p| reference.recommend_top_k_with(pmmrec::Precision::Int8, p, 5, true).unwrap())
        .collect();
    // The quantized path must actually differ in score somewhere from
    // f32, otherwise this test would pass with the knob unwired.
    let f32_scores: Vec<Vec<pmmrec::Recommendation>> = prefixes
        .iter()
        .map(|p| reference.recommend_top_k(p, 5, true).unwrap())
        .collect();
    assert_ne!(direct, f32_scores, "int8 scores should not be byte-copies of f32");

    for workers in [1usize, 2, 4] {
        let ds_f = ds.clone();
        let server = Server::start(
            server_cfg(workers),
            move || PmmEngine::with_precision(model(&ds_f), pmmrec::Precision::Int8),
            popularity(&ds),
        );
        for (p, want) in prefixes.iter().zip(&direct) {
            let resp = server
                .call(Request { user: 1, prefix: p.clone(), k: 5, exclude_seen: true, deadline: None })
                .unwrap();
            assert_eq!(resp.tier, Tier::Full, "workers={workers}");
            assert_eq!(&resp.items, want, "workers={workers} prefix={p:?}");
        }
        server.shutdown();
    }
}

#[test]
fn int8_engine_degraded_tiers_rank_through_the_quantized_path() {
    let _fg = pmm_fault::test_guard();
    let ds = dataset();
    // Full rung errs on the text gate -> text breaker opens -> the
    // vision-only rung serves, still through the int8 catalogue.
    pmm_fault::install(pmm_fault::FaultPlan::parse("err@0").unwrap());
    let reference = model(&ds);
    let ds_f = ds.clone();
    let server = Server::start(
        server_cfg(1),
        move || PmmEngine::with_precision(model(&ds_f), pmmrec::Precision::Int8),
        popularity(&ds),
    );
    let resp = server.call(Request::new(1, vec![0, 1, 2], 5)).unwrap();
    assert_eq!(resp.tier, Tier::VisionOnly);
    let qcat = reference.serve_catalog_q(pmmrec::Modality::VisionOnly).unwrap();
    let cat = reference.serve_catalog(pmmrec::Modality::VisionOnly).unwrap();
    let user = reference.serve_user_vector(&cat, &[0, 1, 2]).unwrap();
    let want = reference.serve_rank_q(&qcat, &user, &[0, 1, 2], 5, false);
    assert_eq!(resp.items, want, "degraded rung must use the quantized catalogue");
    server.shutdown();
}

#[test]
fn injected_encoder_error_degrades_to_a_single_modality_tier() {
    let _fg = pmm_fault::test_guard();
    let ds = dataset();
    pmm_fault::install(pmm_fault::FaultPlan::parse("err@0").unwrap());
    let ds_f = ds.clone();
    let server = Server::start(
        server_cfg(1),
        move || PmmEngine::new(model(&ds_f)),
        popularity(&ds),
    );
    // Full rung errs on the text gate -> text breaker opens ->
    // TextOnly denied -> VisionOnly serves.
    let resp = server.call(Request::new(1, vec![0, 1, 2], 5)).unwrap();
    assert_eq!(resp.tier, Tier::VisionOnly);
    assert!(resp.items.iter().all(|r| r.score.is_finite()));
    assert_eq!(
        server.breaker_state(Component::TextEncoder),
        pmm_serve::BreakerState::Open
    );
    // The vision-rung answer matches the model's own vision-only path.
    let reference = model(&ds);
    let cat = reference.serve_catalog(pmmrec::Modality::VisionOnly).unwrap();
    let user = reference.serve_user_vector(&cat, &[0, 1, 2]).unwrap();
    let want = reference.serve_rank(&cat, &user, &[0, 1, 2], 5, false);
    pmm_fault::clear();
    assert_eq!(resp.items, want);
}

#[test]
fn panic_mid_request_resolves_and_the_respawned_worker_is_bit_identical() {
    let _fg = pmm_fault::test_guard();
    let ds = dataset();
    let reference = model(&ds);
    let prefix = vec![0, 1, 2];
    let want = reference.recommend_top_k(&prefix, 5, true).unwrap();
    // The first request panics its worker mid-request.
    pmm_fault::install(pmm_fault::FaultPlan::parse("panic@0").unwrap());
    let ds_f = ds.clone();
    let server = Server::start(
        ServerConfig {
            supervisor: SupervisorConfig {
                restart_backoff: Duration::from_millis(1),
                watchdog_interval: Duration::from_millis(2),
                ..SupervisorConfig::default()
            },
            ..server_cfg(1)
        },
        move || PmmEngine::new(model(&ds_f)),
        popularity(&ds),
    );
    // The panicking request still resolves through the ladder: the
    // retry lands on the respawned worker and serves the full tier,
    // bit-identical to the direct call.
    let resp = server.call(Request {
        user: 1,
        prefix: prefix.clone(),
        k: 5,
        exclude_seen: true,
        deadline: None,
    })
    .unwrap();
    assert_eq!(resp.tier, Tier::Full, "the retry reaches the model path");
    assert_eq!(resp.items, want, "the retried answer is bit-identical to a direct call");
    // The worker was respawned within the restart budget...
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while server.worker_restarts() != vec![1] && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(server.worker_restarts(), vec![1], "one respawn, within budget");
    assert!(!server.degraded());
    // ...and subsequent requests are bit-identical to direct calls.
    let after = server.call(Request {
        user: 2,
        prefix: prefix.clone(),
        k: 5,
        exclude_seen: true,
        deadline: None,
    })
    .unwrap();
    pmm_fault::clear();
    assert_eq!(after.tier, Tier::Full);
    assert_eq!(after.items, want);
}

#[test]
fn snapshot_swap_under_load_sheds_nothing_and_tags_epochs() {
    let _fg = pmm_fault::test_guard();
    let ds = dataset();
    let prefix = vec![0, 1, 2];
    let old_want = model_seeded(&ds, 7).recommend_top_k(&prefix, 5, true).unwrap();
    let new_want = model_seeded(&ds, 11).recommend_top_k(&prefix, 5, true).unwrap();
    assert_ne!(old_want, new_want, "the two snapshots must be distinguishable");

    let ds_old = ds.clone();
    let server = std::sync::Arc::new(Server::start(
        server_cfg(2),
        move || PmmEngine::new(model_seeded(&ds_old, 7)),
        popularity(&ds),
    ));
    let request = || Request {
        user: 1,
        prefix: prefix.clone(),
        k: 5,
        exclude_seen: true,
        deadline: None,
    };
    // Pre-swap: epoch 0, old snapshot's answer.
    let before = server.call(request()).unwrap();
    assert_eq!((before.epoch, &before.items), (0, &old_want));

    // Load the queue, then swap mid-backlog from another thread while
    // requests keep flowing.
    let handles: Vec<_> = (0..12).map(|_| server.submit(request()).unwrap()).collect();
    let swapper = {
        let server = std::sync::Arc::clone(&server);
        let ds_new = ds.clone();
        std::thread::spawn(move || {
            server.swap_snapshot(move || PmmEngine::new(model_seeded(&ds_new, 11)))
        })
    };
    let late: Vec<_> = (0..4).map(|_| server.submit(request()).unwrap()).collect();

    // Zero swap-attributable sheds: every accepted request resolves,
    // and every response is attributable to exactly one snapshot.
    for h in handles.into_iter().chain(late) {
        let resp = h.wait().expect("no request is shed or dropped across the swap");
        assert_eq!(resp.tier, Tier::Full);
        match resp.epoch {
            0 => assert_eq!(resp.items, old_want, "epoch-0 answers come from the old engine"),
            1 => assert_eq!(resp.items, new_want, "epoch-1 answers come from the new engine"),
            e => panic!("impossible epoch {e}"),
        }
    }
    let report = swapper.join().expect("swap thread");
    assert_eq!(report.epoch, 1);
    assert_eq!(report.workers, 2, "every worker adopted the new snapshot");
    assert_eq!(report.given_up, 0);

    // Post-flip: every answer carries the new epoch and snapshot.
    let after = server.call(request()).unwrap();
    assert_eq!((after.epoch, &after.items), (1, &new_want));
}
