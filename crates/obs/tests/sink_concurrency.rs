//! The JSONL sink is one shared file behind a mutex; lines from
//! concurrent emitters must never interleave mid-line. Eight threads
//! hammer the sink with messages full of characters that must be
//! escaped (quotes, backslashes, newlines); afterwards every line in
//! the file must parse independently.
//!
//! Lives in its own integration-test binary so the process-global sink
//! is not shared with other tests.

use pmm_obs::json::{parse_flat, JsonValue};
use pmm_obs::{sink, Level};

const THREADS: usize = 8;
const PER_THREAD: usize = 200;

#[test]
fn concurrent_emitters_never_tear_a_line() {
    let path = std::env::temp_dir().join(format!("pmm_sink_conc_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    sink::open(&path).expect("open sink");
    pmm_obs::set_enabled(true);

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Alternate the writer paths: the log emitter and
                    // the raw-object extension point both funnel into
                    // the same line writer.
                    if i % 2 == 0 {
                        sink::emit_log(
                            Level::Info,
                            "conc",
                            &format!("t{t} i{i} \"quoted\" back\\slash new\nline tab\there"),
                        );
                    } else {
                        sink::emit_obj(
                            pmm_obs::json::JsonObj::new()
                                .str("ev", "conc")
                                .u64("thread", t as u64)
                                .u64("i", i as u64)
                                .str("payload", "curly {brace} and \u{1F600} unicode\n"),
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    pmm_obs::set_enabled(false);
    sink::close();

    let text = std::fs::read_to_string(&path).expect("read sink file");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), THREADS * PER_THREAD, "one line per emitted event");
    let mut logs = 0usize;
    let mut objs = 0usize;
    for (n, line) in lines.iter().enumerate() {
        let obj = parse_flat(line)
            .unwrap_or_else(|| panic!("line {n} is not independently parseable: {line:?}"));
        match obj.get("ev").and_then(JsonValue::as_str) {
            Some("log") => {
                logs += 1;
                let msg = obj["msg"].as_str().expect("log line carries msg");
                // The escaped newline survives the round-trip inside
                // one line.
                assert!(msg.contains("new\nline"), "escapes round-trip: {msg:?}");
            }
            Some("conc") => {
                objs += 1;
                assert!(obj["thread"].as_f64().is_some_and(|t| t < THREADS as f64));
            }
            other => panic!("line {n} has unexpected ev {other:?}"),
        }
    }
    assert_eq!(logs, THREADS * PER_THREAD / 2);
    assert_eq!(objs, THREADS * PER_THREAD / 2);
    let _ = std::fs::remove_file(&path);
}
