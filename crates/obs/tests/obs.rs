//! End-to-end tests of the global telemetry state: span nesting and
//! aggregation across threads, counter monotonicity, and the JSONL
//! sink round-trip.
//!
//! The enable flag, profile map, counters, and sink are process
//! globals shared by every test thread in this binary, so each test
//! holds `guard()` for its whole body and restores the disabled state
//! before releasing it.

use std::sync::{Mutex, MutexGuard, OnceLock};

use pmm_obs::json::{parse_flat, JsonValue};
use pmm_obs::{sink, span, EpochRecord, EpochStats, Level, LossBreakdown};

fn guard() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    let g = GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    pmm_obs::reset();
    pmm_obs::set_enabled(true);
    g
}

fn finish(g: MutexGuard<'static, ()>) {
    pmm_obs::set_enabled(false);
    pmm_obs::reset();
    drop(g);
}

fn spin(iters: u32) -> u32 {
    // Busy work a span can time without sleeping.
    let mut acc = 0u32;
    for i in 0..iters {
        acc = acc.wrapping_mul(31).wrapping_add(std::hint::black_box(i));
    }
    acc
}

#[test]
fn spans_nest_and_aggregate_across_threads() {
    let g = guard();
    const THREADS: usize = 3;
    const INNER: usize = 5;
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            std::thread::spawn(|| {
                let _outer = span("outer");
                for _ in 0..INNER {
                    let _inner = span("inner");
                    std::hint::black_box(spin(10_000));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let profile: std::collections::HashMap<String, pmm_obs::SpanStat> =
        pmm_obs::span::profile_snapshot().into_iter().collect();
    let outer = profile["outer"];
    let inner = profile["outer/inner"];
    assert_eq!(outer.count, THREADS as u64);
    assert_eq!(inner.count, (THREADS * INNER) as u64);
    // Each thread's inner spans are strict sub-intervals of its outer
    // span, so the aggregate obeys the same containment.
    assert!(outer.total_ns >= inner.total_ns, "outer {outer:?} vs inner {inner:?}");
    // Nesting is per thread: no thread saw another's stack, so the
    // only paths are the two we created.
    assert_eq!(profile.len(), 2, "unexpected paths: {:?}", profile.keys());
    finish(g);
}

#[test]
fn worker_spans_inherit_the_owner_base_path() {
    // Regression: span stacks are thread-local, so before base-path
    // inheritance a span opened on a worker thread surfaced as a bogus
    // profile root (e.g. a bare "matmul" next to "train"), vanishing
    // from its parent's subtree. Workers stamped with the owner's
    // current path must land inside it.
    let g = guard();
    {
        let _outer = span("train");
        let base = span::current_path();
        assert_eq!(base, "train");
        std::thread::spawn(move || {
            span::set_base_path(base);
            let _sp = span("matmul");
            std::hint::black_box(spin(10_000));
        })
        .join()
        .unwrap();
        // The owner folds externally measured worker time under itself.
        span::record_ns("par_workers", 2, 500);
    }
    let profile: std::collections::HashMap<String, pmm_obs::SpanStat> =
        span::profile_snapshot().into_iter().collect();
    assert!(profile.contains_key("train"), "paths: {:?}", profile.keys());
    assert!(
        profile.contains_key("train/matmul"),
        "worker span must nest under the owner, got: {:?}",
        profile.keys()
    );
    assert!(
        !profile.contains_key("matmul"),
        "worker span leaked to the profile root: {:?}",
        profile.keys()
    );
    let folded = profile["train/par_workers"];
    assert_eq!(folded.count, 2);
    assert_eq!(folded.total_ns, 500);
    finish(g);
}

#[test]
fn disabled_spans_record_nothing() {
    let g = guard();
    pmm_obs::set_enabled(false);
    {
        let _sp = span("ghost");
        std::hint::black_box(spin(100));
    }
    assert!(pmm_obs::span::profile_snapshot().is_empty());
    finish(g);
}

#[test]
fn counters_are_monotonic_and_gated() {
    let g = guard();
    let c = &pmm_obs::counter::MATMUL_FLOPS;
    let mut prev = c.get();
    assert_eq!(prev, 0);
    for _ in 0..10 {
        pmm_obs::record_matmul(4, 5, 6);
        let now = c.get();
        assert!(now > prev, "counter must strictly increase while enabled");
        assert_eq!(now - prev, pmm_obs::counter::matmul_flop_estimate(4, 5, 6));
        prev = now;
    }
    pmm_obs::set_enabled(false);
    pmm_obs::record_matmul(4, 5, 6);
    assert_eq!(c.get(), prev, "disabled adds must be no-ops");
    finish(g);
}

#[test]
fn matmul_flops_are_net_of_skipped_zero_muladds() {
    // The nn kernel skips whole inner loops when a lhs element is zero,
    // so the counter must subtract those muladds instead of reporting
    // the dense m*k*n estimate (satellite: honest FLOP accounting).
    let g = guard();
    let c = &pmm_obs::counter::MATMUL_FLOPS;
    pmm_obs::counter::record_matmul_skipping(4, 5, 6, 3); // 2 * (20 - 3) * 6
    assert_eq!(c.get(), 204);
    pmm_obs::counter::record_bmm_skipping(2, 3, 4, 5, 6); // 2 * (24 - 6) * 5
    assert_eq!(c.get(), 204 + 180);
    // With no zeros the skipping form degenerates to the dense count.
    pmm_obs::counter::record_matmul_skipping(4, 5, 6, 0);
    assert_eq!(c.get(), 204 + 180 + pmm_obs::counter::matmul_flop_estimate(4, 5, 6));
    finish(g);
}

#[test]
fn tape_gauge_tracks_peak() {
    let g = guard();
    for _ in 0..4 {
        pmm_obs::counter::tape_node_created();
    }
    pmm_obs::counter::tape_node_dropped();
    pmm_obs::counter::tape_node_dropped();
    assert_eq!(pmm_obs::counter::tape_live(), 2);
    assert_eq!(pmm_obs::counter::tape_peak(), 4);
    assert_eq!(pmm_obs::counter::TAPE_NODES.get(), 4);
    finish(g);
}

#[test]
fn jsonl_sink_round_trips_every_event_kind() {
    let g = guard();
    let path = std::env::temp_dir().join(format!("pmm_obs_test_{}.jsonl", std::process::id()));
    sink::open(&path).unwrap();
    assert!(sink::is_open());

    sink::emit_log(Level::Info, "test", "hello \"quoted\"\nline");
    sink::emit_cache("fused", true, "/tmp/ckpt");
    sink::emit_epoch(&EpochRecord {
        epoch: 3,
        wall_s: 1.5,
        flops: 1024,
        tape_peak: 77,
        stats: EpochStats {
            loss: 2.0,
            breakdown: Some(LossBreakdown { dap: 1.0, nicl: 0.5, nid: 0.25, rcl: 0.25 }),
            grad_norm: 0.9,
            param_norm: 12.0,
            steps: 8,
            skipped: 0,
        },
    });
    {
        let _sp = span("rt");
        std::hint::black_box(spin(100));
    }
    pmm_obs::record_matmul(2, 3, 4);
    sink::flush_profile();
    sink::close();
    assert!(!sink::is_open());

    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let lines: Vec<_> = text.lines().collect();
    let events: Vec<_> = lines
        .iter()
        .map(|l| parse_flat(l).unwrap_or_else(|| panic!("invalid JSONL line: {l}")))
        .collect();

    let kind = |ev: &str| {
        events
            .iter()
            .filter(|e| e["ev"].as_str() == Some(ev))
            .cloned()
            .collect::<Vec<_>>()
    };
    let logs = kind("log");
    let log = &logs[0];
    assert_eq!(log["msg"].as_str().unwrap(), "hello \"quoted\"\nline");
    assert_eq!(log["level"].as_str().unwrap(), "info");

    let caches = kind("cache");
    let cache = &caches[0];
    assert_eq!(cache["hit"], JsonValue::Bool(true));

    let epochs = kind("epoch");
    let epoch = &epochs[0];
    assert_eq!(epoch["epoch"].as_f64().unwrap(), 3.0);
    assert_eq!(epoch["flops"].as_f64().unwrap(), 1024.0);
    let total = ["dap", "nicl", "nid", "rcl"]
        .iter()
        .map(|k| epoch[*k].as_f64().unwrap())
        .sum::<f64>();
    assert!((total - epoch["loss"].as_f64().unwrap()).abs() < 1e-9);

    let spans = kind("span");
    assert!(spans.iter().any(|s| s["path"].as_str() == Some("rt")));
    let counters = kind("counter");
    let flops = counters
        .iter()
        .find(|c| c["name"].as_str() == Some("matmul_flops"))
        .expect("matmul_flops counter event");
    assert_eq!(flops["value"].as_f64().unwrap(), f64::from(2 * 2 * 3 * 4));
    finish(g);
}

#[test]
fn closed_sink_drops_events_silently() {
    let g = guard();
    sink::close();
    sink::emit_log(Level::Error, "test", "into the void");
    sink::emit_counter("nope", 1);
    assert!(!sink::is_open());
    finish(g);
}
