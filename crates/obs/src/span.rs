//! RAII scoped timers with thread-local nesting.
//!
//! `let _sp = pmm_obs::span("matmul");` times the enclosing scope.
//! Nesting is tracked per thread, so a span opened while `forward` and
//! `attention` are active lands in the profile under the path
//! `forward/attention/matmul`. Every (path, duration) pair folds into
//! one global map of `SpanStat { count, total_ns }`, cheap enough to
//! leave in hot paths: when collection is disabled a span is one
//! relaxed atomic load and no clock read.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Aggregated timings for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of times the span closed.
    pub count: u64,
    /// Total wall-clock nanoseconds across all closes.
    pub total_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

fn profile() -> &'static Mutex<HashMap<String, SpanStat>> {
    static PROFILE: OnceLock<Mutex<HashMap<String, SpanStat>>> = OnceLock::new();
    PROFILE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Guard returned by [`span`]; records on drop.
pub struct Span {
    start: Option<Instant>,
}

/// Open a scoped timer named `name`, nested under any spans already
/// open on this thread. Returns a guard that records the elapsed time
/// when dropped; bind it (`let _sp = ...`) so it lives to scope end.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span { start: None };
    }
    STACK.with(|s| s.borrow_mut().push(name));
    Span { start: Some(Instant::now()) }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed();
        let path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        let mut map = profile().lock().unwrap();
        let stat = map.entry(path).or_default();
        stat.count += 1;
        stat.total_ns += elapsed.as_nanos() as u64;
    }
}

/// Snapshot of the aggregated profile, sorted by path so parents
/// precede their children.
pub fn profile_snapshot() -> Vec<(String, SpanStat)> {
    let map = profile().lock().unwrap();
    let mut rows: Vec<(String, SpanStat)> = map.iter().map(|(k, v)| (k.clone(), *v)).collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

/// Total nanoseconds recorded directly under `path` (exact match).
pub fn path_total_ns(path: &str) -> u64 {
    profile().lock().unwrap().get(path).map_or(0, |s| s.total_ns)
}

/// Clear the aggregated profile.
pub fn reset_profile() {
    profile().lock().unwrap().clear();
}
