//! RAII scoped timers with thread-local nesting.
//!
//! `let _sp = pmm_obs::span("matmul");` times the enclosing scope.
//! Nesting is tracked per thread, so a span opened while `forward` and
//! `attention` are active lands in the profile under the path
//! `forward/attention/matmul`. Every (path, duration) pair folds into
//! one global map of `SpanStat { count, total_ns }`, cheap enough to
//! leave in hot paths: when collection is disabled a span is one
//! relaxed atomic load and no clock read.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Aggregated timings for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of times the span closed.
    pub count: u64,
    /// Total wall-clock nanoseconds across all closes.
    pub total_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// Path prefix inherited from an owning thread. Span stacks are
    /// thread-local, so without this a span opened on a worker thread
    /// would land in the profile as a bogus root — e.g. a `matmul`
    /// dispatched from inside `train/forward` would surface as a
    /// top-level `matmul`, disappearing from its parent's subtree. The
    /// parallel runtime stamps each worker with the owner's
    /// [`current_path`] so worker spans stay hierarchical.
    static BASE: RefCell<String> = const { RefCell::new(String::new()) };
}

fn profile() -> &'static Mutex<HashMap<String, SpanStat>> {
    static PROFILE: OnceLock<Mutex<HashMap<String, SpanStat>>> = OnceLock::new();
    PROFILE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Guard returned by [`span`]; records on drop.
pub struct Span {
    start: Option<Instant>,
}

/// Open a scoped timer named `name`, nested under any spans already
/// open on this thread. Returns a guard that records the elapsed time
/// when dropped; bind it (`let _sp = ...`) so it lives to scope end.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span { start: None };
    }
    STACK.with(|s| s.borrow_mut().push(name));
    Span { start: Some(Instant::now()) }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed();
        let local = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        let path = prefixed(&local);
        let mut map = profile().lock().unwrap();
        let stat = map.entry(path).or_default();
        stat.count += 1;
        stat.total_ns += elapsed.as_nanos() as u64;
    }
}

/// Join `local` onto this thread's inherited base path.
fn prefixed(local: &str) -> String {
    BASE.with(|b| {
        let base = b.borrow();
        if base.is_empty() {
            local.to_string()
        } else if local.is_empty() {
            base.clone()
        } else {
            format!("{base}/{local}")
        }
    })
}

/// Full span path active on this thread right now: the inherited base
/// plus any locally open spans. Empty when nothing is open.
pub fn current_path() -> String {
    STACK.with(|s| prefixed(&s.borrow().join("/")))
}

/// Install the path prefix under which every span opened on this
/// thread will be recorded. Worker threads call this with the owning
/// thread's [`current_path`] so their spans stay inside the owner's
/// subtree; pass an empty string to clear.
pub fn set_base_path(base: String) {
    BASE.with(|b| *b.borrow_mut() = base);
}

/// Fold externally-measured time into the profile as `count` closes of
/// a span named `name` under this thread's current path. Used by the
/// parallel runtime to charge aggregate worker wall-clock to the
/// dispatching span without the workers touching the clock ordering.
pub fn record_ns(name: &str, count: u64, total_ns: u64) {
    if !crate::enabled() {
        return;
    }
    let parent = current_path();
    let path = if parent.is_empty() { name.to_string() } else { format!("{parent}/{name}") };
    let mut map = profile().lock().unwrap();
    let stat = map.entry(path).or_default();
    stat.count += count;
    stat.total_ns += total_ns;
}

/// Snapshot of the aggregated profile, sorted by path so parents
/// precede their children.
pub fn profile_snapshot() -> Vec<(String, SpanStat)> {
    let map = profile().lock().unwrap();
    let mut rows: Vec<(String, SpanStat)> = map.iter().map(|(k, v)| (k.clone(), *v)).collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

/// Total nanoseconds recorded directly under `path` (exact match).
pub fn path_total_ns(path: &str) -> u64 {
    profile().lock().unwrap().get(path).map_or(0, |s| s.total_ns)
}

/// Clear the aggregated profile.
pub fn reset_profile() {
    profile().lock().unwrap().clear();
}
