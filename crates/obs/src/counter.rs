//! Monotonic global counters plus the backward-tape live gauge.
//!
//! Counters are static `AtomicU64`s; an increment is one relaxed
//! atomic load (the enable check) plus one relaxed `fetch_add` when
//! collection is on, and just the load when off.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A named monotonic counter.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    pub const fn new(name: &'static str) -> Self {
        Counter { name, value: AtomicU64::new(0) }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n`; no-op while collection is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Growth since a previously captured `get()` value, saturating so
    /// a reset between the two reads degrades to the current value
    /// instead of wrapping.
    pub fn delta_since(&self, snapshot: u64) -> u64 {
        self.get().saturating_sub(snapshot)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Estimated floating-point operations in matmul kernels (2·m·k·n per
/// product, accumulated from actual shapes).
pub static MATMUL_FLOPS: Counter = Counter::new("matmul_flops");
/// Estimated scalar FLOPs in non-matmul tensor ops (elementwise,
/// activations, normalisation, reductions, losses) — per-op estimates
/// recorded at op-construction time so the matmul counter no longer
/// under-reports total arithmetic.
pub static OP_FLOPS: Counter = Counter::new("op_flops");
/// Pre-backward autograd graph audits that ran and passed
/// (`pmm_audit::graph` via the training-step hook).
pub static GRAPH_AUDITS: Counter = Counter::new("graph_audits");
/// Dense tensors materialized.
pub static TENSOR_ALLOCS: Counter = Counter::new("tensor_allocs");
/// Bytes of tensor element storage allocated.
pub static TENSOR_ALLOC_BYTES: Counter = Counter::new("tensor_alloc_bytes");
/// Packed micro-panel scratch buffers built by the tiled matmul path
/// (plain scratch, deliberately outside `tensor_allocs` so tensor
/// materializations stay comparable across kernel generations).
pub static PACK_ALLOCS: Counter = Counter::new("pack_allocs");
/// Bytes of packed micro-panel scratch allocated.
pub static PACK_ALLOC_BYTES: Counter = Counter::new("pack_alloc_bytes");
/// Quantized tensors materialized (int8 payload + per-row parameters).
pub static QTENSOR_ALLOCS: Counter = Counter::new("qtensor_allocs");
/// Bytes of quantized tensor storage allocated.
pub static QTENSOR_ALLOC_BYTES: Counter = Counter::new("qtensor_alloc_bytes");
/// Integer multiply-add ops (×2, mirroring the FLOP convention) in the
/// dequant-free int8 matmul kernels.
pub static QMATMUL_INT_OPS: Counter = Counter::new("qmatmul_int_ops");
/// Autograd tape nodes ever created.
pub static TAPE_NODES: Counter = Counter::new("tape_nodes");
/// Evaluation cases scored by the ranking metrics.
pub static EVAL_CASES: Counter = Counter::new("eval_cases");
/// Optimisation steps skipped by the anomaly guard (non-finite loss or
/// gradient norm).
pub static ANOMALY_STEPS: Counter = Counter::new("anomaly_steps");
/// Parameter rollbacks triggered by consecutive anomalies.
pub static ROLLBACKS: Counter = Counter::new("rollbacks");
/// Recoveries: finite steps arriving after an anomaly streak, with the
/// backed-off learning rate restored.
pub static RECOVERIES: Counter = Counter::new("recoveries");
/// Corrupt/unreadable checkpoints skipped while falling back to an
/// older generation.
pub static CKPT_FALLBACKS: Counter = Counter::new("ckpt_fallbacks");
/// IO operations that succeeded only after at least one retry.
pub static IO_RETRIES: Counter = Counter::new("io_retries");
/// Item encodes served with a missing modality (degraded content).
pub static DEGRADED_ENCODES: Counter = Counter::new("degraded_encodes");
/// Worker blocks dispatched by the pmm-par runtime (one per spawned
/// scoped thread; sequential fallbacks don't count).
pub static PAR_TASKS: Counter = Counter::new("par_tasks");

// --- injected-fault counts, by kind (bumped by pmm-fault when a
// planned fault actually fires; chaos bins print these so regressions
// in injection coverage are visible) ---

/// NaN-loss faults fired (`nan@N`).
pub static FAULTS_NAN: Counter = Counter::new("faults_nan");
/// Checkpoint-corruption faults fired (`ckpt@N`).
pub static FAULTS_CKPT: Counter = Counter::new("faults_ckpt");
/// IO-failure faults fired (`io@N`).
pub static FAULTS_IO: Counter = Counter::new("faults_io");
/// Slow-encoder faults fired (`slow@N`).
pub static FAULTS_SLOW: Counter = Counter::new("faults_slow");
/// Encoder-error faults fired (`err@N`).
pub static FAULTS_ERR: Counter = Counter::new("faults_err");
/// Worker-panic faults fired (`panic@N`).
pub static FAULTS_PANIC: Counter = Counter::new("faults_panic");
/// Worker-wedge faults fired (`stall@N`).
pub static FAULTS_STALL: Counter = Counter::new("faults_stall");
/// WAL torn-write faults fired (`wal_corrupt@N`).
pub static FAULTS_WAL: Counter = Counter::new("faults_wal_corrupt");
/// Shard-panic faults fired (`shard_panic@N`).
pub static FAULTS_SHARD: Counter = Counter::new("faults_shard_panic");

// --- serving-runtime counters (pmm-serve) ---

/// Requests accepted into the serving queue.
pub static SERVE_REQUESTS: Counter = Counter::new("serve_requests");
/// Requests shed at enqueue because the bounded queue was full.
pub static SERVE_SHED: Counter = Counter::new("serve_shed");
/// Requests cancelled between pipeline stages by an expired deadline.
pub static SERVE_DEADLINE_MISSES: Counter = Counter::new("serve_deadline_misses");
/// Circuit-breaker transitions into the open state.
pub static SERVE_BREAKER_TRIPS: Counter = Counter::new("serve_breaker_trips");
/// Total nanoseconds breakers spent open, accounted when each breaker
/// closes and flushed for still-open breakers at server shutdown (so
/// an outage open at shutdown still reaches SLO math).
pub static SERVE_BREAKER_OPEN_NS: Counter = Counter::new("serve_breaker_open_ns");
/// Responses served at the full dual-modality tier.
pub static SERVE_TIER_FULL: Counter = Counter::new("serve_tier_full");
/// Responses served from a single surviving modality.
pub static SERVE_TIER_SINGLE: Counter = Counter::new("serve_tier_single");
/// Responses served from the per-user last-good top-k cache.
pub static SERVE_TIER_CACHED: Counter = Counter::new("serve_tier_cached");
/// Responses served from the global popularity baseline.
pub static SERVE_TIER_POP: Counter = Counter::new("serve_tier_pop");

// --- worker-supervision counters (pmm-serve supervisor) ---

/// Worker request executions that panicked and were caught by the
/// supervisor's `catch_unwind` isolation.
pub static SERVE_PANICS: Counter = Counter::new("serve_worker_panics");
/// Workers declared wedged by the heartbeat watchdog (their in-flight
/// request is charged as a deadline miss).
pub static SERVE_WEDGES: Counter = Counter::new("serve_worker_wedges");
/// Replacement workers spawned by the supervisor (panic or wedge).
pub static SERVE_WORKER_RESTARTS: Counter = Counter::new("serve_worker_restarts");
/// Worker slots abandoned after exhausting their restart budget.
pub static SERVE_GIVEUPS: Counter = Counter::new("serve_worker_giveups");
/// Requests re-enqueued onto a healthy worker after a transient
/// failure, within the global retry budget.
pub static SERVE_RETRIES: Counter = Counter::new("serve_retries");
/// Retry candidates denied by the exhausted global retry budget and
/// served from the model-free floor instead.
pub static SERVE_RETRIES_DENIED: Counter = Counter::new("serve_retries_denied");
/// Snapshot hot-swaps performed via `Server::swap_snapshot`.
pub static SERVE_SWAPS: Counter = Counter::new("serve_swaps");
/// Total nanoseconds hot-swaps spent draining: from the epoch flip
/// until every live worker had adopted the new snapshot.
pub static SERVE_SWAP_DRAIN_NS: Counter = Counter::new("serve_swap_drain_ns");

// --- streaming-ingestion counters (pmm-ingest) ---

/// Item records appended to the write-ahead log (fsynced frames).
pub static WAL_APPENDS: Counter = Counter::new("wal_appends");
/// WAL segments opened (the initial segment plus every rotation).
pub static WAL_SEGMENTS: Counter = Counter::new("wal_segments");
/// Item records recovered by WAL replay across all segments.
pub static WAL_REPLAYED: Counter = Counter::new("wal_replayed");
/// Torn/corrupt WAL tails truncated during replay (each truncation is
/// one counted event, never a panic).
pub static WAL_TRUNCATED: Counter = Counter::new("wal_truncated");
/// Items ingested into a live delta catalogue (WAL append + in-memory
/// delta made searchable).
pub static INGEST_ITEMS: Counter = Counter::new("ingest_items");
/// Delta catalogues folded into the base via a snapshot hot-swap.
pub static INGEST_FOLDS: Counter = Counter::new("ingest_folds");

// --- sharded scatter-gather counters (pmm-serve shard pool) ---

/// Per-shard rank executions that panicked and were caught by the
/// shard pool's isolation.
pub static SERVE_SHARD_PANICS: Counter = Counter::new("serve_shard_panics");
/// Shards quarantined after a panicking/corrupt rank execution.
pub static SERVE_SHARD_QUARANTINES: Counter = Counter::new("serve_shard_quarantines");
/// Quarantined shards rebuilt within the rebuild budget.
pub static SERVE_SHARD_REBUILDS: Counter = Counter::new("serve_shard_rebuilds");
/// Shards abandoned after exhausting their rebuild budget.
pub static SERVE_SHARD_GIVEUPS: Counter = Counter::new("serve_shard_giveups");
/// Shards that contributed to gathered responses (summed per request).
pub static SERVE_SHARDS_SERVED: Counter = Counter::new("serve_shards_served");
/// Shards asked for per gathered response (summed per request).
pub static SERVE_SHARDS_TOTAL: Counter = Counter::new("serve_shards_total");
/// Responses gathered from fewer shards than the full pool (tagged
/// `PartialShards` in the response).
pub static SERVE_PARTIAL: Counter = Counter::new("serve_partial_responses");

// --- request-tracing counters (pmm-trace) ---

/// Trace events pushed into the bounded trace ring.
pub static TRACE_EVENTS: Counter = Counter::new("trace_events");
/// Trace events evicted (oldest-first) because the ring was full.
pub static TRACE_DROPPED: Counter = Counter::new("trace_dropped");

// --- race-harness counters (pmm-audit sched) ---

/// Interleaving schedules run by the deterministic race harness.
pub static RACE_SCHEDULES: Counter = Counter::new("race_schedules_explored");
/// Invariant violations the race harness observed (each is printed
/// with its replay seed).
pub static RACE_VIOLATIONS: Counter = Counter::new("race_violations");

/// Currently-live tape nodes. Can dip below zero transiently if
/// collection is toggled while a graph is alive; the peak is what
/// matters and is monotone within an enabled window.
static TAPE_LIVE: AtomicI64 = AtomicI64::new(0);
static TAPE_PEAK: AtomicI64 = AtomicI64::new(0);

/// High-water mark of the serving queue depth.
static SERVE_QUEUE_PEAK: AtomicU64 = AtomicU64::new(0);

/// Record an observed serving-queue depth, keeping the high-water mark.
#[inline]
pub fn record_queue_depth(depth: u64) {
    if crate::enabled() {
        SERVE_QUEUE_PEAK.fetch_max(depth, Ordering::Relaxed);
    }
}

/// High-water mark of the serving queue depth.
pub fn serve_queue_peak() -> u64 {
    SERVE_QUEUE_PEAK.load(Ordering::Relaxed)
}

/// High-water mark of the open WAL segment's byte length (how close
/// the tail got to the rotation threshold).
static WAL_TAIL_PEAK: AtomicU64 = AtomicU64::new(0);

/// Record the open WAL segment's byte length after an append, keeping
/// the high-water mark.
#[inline]
pub fn record_wal_tail_bytes(bytes: u64) {
    if crate::enabled() {
        WAL_TAIL_PEAK.fetch_max(bytes, Ordering::Relaxed);
    }
}

/// High-water mark of the open WAL segment's byte length.
pub fn wal_tail_peak_bytes() -> u64 {
    WAL_TAIL_PEAK.load(Ordering::Relaxed)
}

/// Record a matmul of `[m, k] x [k, n]` (or the equivalent transposed
/// layout): 2·m·k·n scalar FLOPs.
#[inline]
pub fn record_matmul(m: usize, k: usize, n: usize) {
    MATMUL_FLOPS.add(2 * (m as u64) * (k as u64) * (n as u64));
}

/// Record a batched matmul: `batch` products of `[m, k] x [k, n]`.
#[inline]
pub fn record_bmm(batch: usize, m: usize, k: usize, n: usize) {
    MATMUL_FLOPS.add((batch as u64) * 2 * (m as u64) * (k as u64) * (n as u64));
}

/// Record a matmul whose kernel short-circuits zero entries of the
/// `[m, k]` left operand: each of the `lhs_zeros` skipped entries
/// saves `2·n` FLOPs versus the dense `2·m·k·n` estimate. Kernels that
/// take the skipping path report through this so `matmul_flops` counts
/// multiply-adds actually executed on sparse/masked inputs.
#[inline]
pub fn record_matmul_skipping(m: usize, k: usize, n: usize, lhs_zeros: usize) {
    let dense = (m as u64) * (k as u64);
    let live = dense.saturating_sub(lhs_zeros as u64);
    MATMUL_FLOPS.add(2 * live * (n as u64));
}

/// Batched form of [`record_matmul_skipping`]; `lhs_zeros` counts
/// zeros across all `batch` left operands.
#[inline]
pub fn record_bmm_skipping(batch: usize, m: usize, k: usize, n: usize, lhs_zeros: usize) {
    let dense = (batch as u64) * (m as u64) * (k as u64);
    let live = dense.saturating_sub(lhs_zeros as u64);
    MATMUL_FLOPS.add(2 * live * (n as u64));
}

/// Record one dense tensor materialization of `elems` `f32` elements —
/// a single enable check covering both the count and byte counters.
#[inline]
pub fn record_tensor_alloc(elems: usize) {
    if crate::enabled() {
        TENSOR_ALLOCS.value.fetch_add(1, Ordering::Relaxed);
        TENSOR_ALLOC_BYTES
            .value
            .fetch_add((elems * std::mem::size_of::<f32>()) as u64, Ordering::Relaxed);
    }
}

/// Record `n` estimated scalar FLOPs from a non-matmul tensor op.
#[inline]
pub fn record_op_flops(n: u64) {
    OP_FLOPS.add(n);
}

/// Record one packed micro-panel scratch buffer of `elems` `f32`
/// elements — the tiled matmul's pack passes report through this so
/// kernel scratch is visible next to `tensor_alloc_bytes`.
#[inline]
pub fn record_pack_alloc(elems: usize) {
    if crate::enabled() {
        PACK_ALLOCS.value.fetch_add(1, Ordering::Relaxed);
        PACK_ALLOC_BYTES
            .value
            .fetch_add((elems * std::mem::size_of::<f32>()) as u64, Ordering::Relaxed);
    }
}

/// Record one quantized-tensor materialization of `bytes` total storage
/// (int8 payload plus per-row scale/zero-point/sum parameters).
#[inline]
pub fn record_qtensor_alloc(bytes: usize) {
    if crate::enabled() {
        QTENSOR_ALLOCS.value.fetch_add(1, Ordering::Relaxed);
        QTENSOR_ALLOC_BYTES.value.fetch_add(bytes as u64, Ordering::Relaxed);
    }
}

/// Record an int8 matmul of `[m, k] x [k, n]`: 2·m·k·n integer
/// multiply-adds, kept in a separate counter from `matmul_flops` so
/// quantized and float work stay individually attributable.
#[inline]
pub fn record_qmatmul(m: usize, k: usize, n: usize) {
    QMATMUL_INT_OPS.add(2 * (m as u64) * (k as u64) * (n as u64));
}

/// Exact FLOP estimate [`record_matmul`] uses, exposed so tests and
/// roofline math share one definition.
pub fn matmul_flop_estimate(m: usize, k: usize, n: usize) -> u64 {
    2 * (m as u64) * (k as u64) * (n as u64)
}

/// Note a tape node's birth: bumps the monotonic total and the live
/// gauge, updating the high-water mark.
#[inline]
pub fn tape_node_created() {
    if crate::enabled() {
        TAPE_NODES.value.fetch_add(1, Ordering::Relaxed);
        let live = TAPE_LIVE.fetch_add(1, Ordering::Relaxed) + 1;
        TAPE_PEAK.fetch_max(live, Ordering::Relaxed);
    }
}

/// Note a tape node's drop.
#[inline]
pub fn tape_node_dropped() {
    if crate::enabled() {
        TAPE_LIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// High-water mark of simultaneously-live tape nodes.
pub fn tape_peak() -> u64 {
    TAPE_PEAK.load(Ordering::Relaxed).max(0) as u64
}

/// Currently-live tape nodes (clamped at zero).
pub fn tape_live() -> u64 {
    TAPE_LIVE.load(Ordering::Relaxed).max(0) as u64
}

/// All counter values by name, including the tape peak, in a stable
/// order suitable for reports.
pub fn counters_snapshot() -> Vec<(&'static str, u64)> {
    vec![
        (MATMUL_FLOPS.name, MATMUL_FLOPS.get()),
        (OP_FLOPS.name, OP_FLOPS.get()),
        (GRAPH_AUDITS.name, GRAPH_AUDITS.get()),
        (TENSOR_ALLOCS.name, TENSOR_ALLOCS.get()),
        (TENSOR_ALLOC_BYTES.name, TENSOR_ALLOC_BYTES.get()),
        (PACK_ALLOCS.name, PACK_ALLOCS.get()),
        (PACK_ALLOC_BYTES.name, PACK_ALLOC_BYTES.get()),
        (QTENSOR_ALLOCS.name, QTENSOR_ALLOCS.get()),
        (QTENSOR_ALLOC_BYTES.name, QTENSOR_ALLOC_BYTES.get()),
        (QMATMUL_INT_OPS.name, QMATMUL_INT_OPS.get()),
        (TAPE_NODES.name, TAPE_NODES.get()),
        ("tape_peak", tape_peak()),
        (EVAL_CASES.name, EVAL_CASES.get()),
        (ANOMALY_STEPS.name, ANOMALY_STEPS.get()),
        (ROLLBACKS.name, ROLLBACKS.get()),
        (RECOVERIES.name, RECOVERIES.get()),
        (CKPT_FALLBACKS.name, CKPT_FALLBACKS.get()),
        (IO_RETRIES.name, IO_RETRIES.get()),
        (DEGRADED_ENCODES.name, DEGRADED_ENCODES.get()),
        (PAR_TASKS.name, PAR_TASKS.get()),
        (FAULTS_NAN.name, FAULTS_NAN.get()),
        (FAULTS_CKPT.name, FAULTS_CKPT.get()),
        (FAULTS_IO.name, FAULTS_IO.get()),
        (FAULTS_SLOW.name, FAULTS_SLOW.get()),
        (FAULTS_ERR.name, FAULTS_ERR.get()),
        (FAULTS_PANIC.name, FAULTS_PANIC.get()),
        (FAULTS_STALL.name, FAULTS_STALL.get()),
        (FAULTS_WAL.name, FAULTS_WAL.get()),
        (FAULTS_SHARD.name, FAULTS_SHARD.get()),
        (SERVE_REQUESTS.name, SERVE_REQUESTS.get()),
        (SERVE_SHED.name, SERVE_SHED.get()),
        (SERVE_DEADLINE_MISSES.name, SERVE_DEADLINE_MISSES.get()),
        (SERVE_BREAKER_TRIPS.name, SERVE_BREAKER_TRIPS.get()),
        (SERVE_BREAKER_OPEN_NS.name, SERVE_BREAKER_OPEN_NS.get()),
        (SERVE_TIER_FULL.name, SERVE_TIER_FULL.get()),
        (SERVE_TIER_SINGLE.name, SERVE_TIER_SINGLE.get()),
        (SERVE_TIER_CACHED.name, SERVE_TIER_CACHED.get()),
        (SERVE_TIER_POP.name, SERVE_TIER_POP.get()),
        (SERVE_PANICS.name, SERVE_PANICS.get()),
        (SERVE_WEDGES.name, SERVE_WEDGES.get()),
        (SERVE_WORKER_RESTARTS.name, SERVE_WORKER_RESTARTS.get()),
        (SERVE_GIVEUPS.name, SERVE_GIVEUPS.get()),
        (SERVE_RETRIES.name, SERVE_RETRIES.get()),
        (SERVE_RETRIES_DENIED.name, SERVE_RETRIES_DENIED.get()),
        (SERVE_SWAPS.name, SERVE_SWAPS.get()),
        (SERVE_SWAP_DRAIN_NS.name, SERVE_SWAP_DRAIN_NS.get()),
        (WAL_APPENDS.name, WAL_APPENDS.get()),
        (WAL_SEGMENTS.name, WAL_SEGMENTS.get()),
        (WAL_REPLAYED.name, WAL_REPLAYED.get()),
        (WAL_TRUNCATED.name, WAL_TRUNCATED.get()),
        (INGEST_ITEMS.name, INGEST_ITEMS.get()),
        (INGEST_FOLDS.name, INGEST_FOLDS.get()),
        (SERVE_SHARD_PANICS.name, SERVE_SHARD_PANICS.get()),
        (SERVE_SHARD_QUARANTINES.name, SERVE_SHARD_QUARANTINES.get()),
        (SERVE_SHARD_REBUILDS.name, SERVE_SHARD_REBUILDS.get()),
        (SERVE_SHARD_GIVEUPS.name, SERVE_SHARD_GIVEUPS.get()),
        (SERVE_SHARDS_SERVED.name, SERVE_SHARDS_SERVED.get()),
        (SERVE_SHARDS_TOTAL.name, SERVE_SHARDS_TOTAL.get()),
        (SERVE_PARTIAL.name, SERVE_PARTIAL.get()),
        (TRACE_EVENTS.name, TRACE_EVENTS.get()),
        (TRACE_DROPPED.name, TRACE_DROPPED.get()),
        (RACE_SCHEDULES.name, RACE_SCHEDULES.get()),
        (RACE_VIOLATIONS.name, RACE_VIOLATIONS.get()),
        ("serve_queue_peak", serve_queue_peak()),
        ("wal_tail_peak_bytes", wal_tail_peak_bytes()),
    ]
}

/// Zero every counter and the tape gauge/peak.
pub fn reset_counters() {
    for c in [
        &MATMUL_FLOPS,
        &OP_FLOPS,
        &GRAPH_AUDITS,
        &TENSOR_ALLOCS,
        &TENSOR_ALLOC_BYTES,
        &PACK_ALLOCS,
        &PACK_ALLOC_BYTES,
        &QTENSOR_ALLOCS,
        &QTENSOR_ALLOC_BYTES,
        &QMATMUL_INT_OPS,
        &TAPE_NODES,
        &EVAL_CASES,
        &ANOMALY_STEPS,
        &ROLLBACKS,
        &RECOVERIES,
        &CKPT_FALLBACKS,
        &IO_RETRIES,
        &DEGRADED_ENCODES,
        &PAR_TASKS,
        &FAULTS_NAN,
        &FAULTS_CKPT,
        &FAULTS_IO,
        &FAULTS_SLOW,
        &FAULTS_ERR,
        &FAULTS_PANIC,
        &FAULTS_STALL,
        &FAULTS_WAL,
        &FAULTS_SHARD,
        &SERVE_REQUESTS,
        &SERVE_SHED,
        &SERVE_DEADLINE_MISSES,
        &SERVE_BREAKER_TRIPS,
        &SERVE_BREAKER_OPEN_NS,
        &SERVE_TIER_FULL,
        &SERVE_TIER_SINGLE,
        &SERVE_TIER_CACHED,
        &SERVE_TIER_POP,
        &SERVE_PANICS,
        &SERVE_WEDGES,
        &SERVE_WORKER_RESTARTS,
        &SERVE_GIVEUPS,
        &SERVE_RETRIES,
        &SERVE_RETRIES_DENIED,
        &SERVE_SWAPS,
        &SERVE_SWAP_DRAIN_NS,
        &WAL_APPENDS,
        &WAL_SEGMENTS,
        &WAL_REPLAYED,
        &WAL_TRUNCATED,
        &INGEST_ITEMS,
        &INGEST_FOLDS,
        &SERVE_SHARD_PANICS,
        &SERVE_SHARD_QUARANTINES,
        &SERVE_SHARD_REBUILDS,
        &SERVE_SHARD_GIVEUPS,
        &SERVE_SHARDS_SERVED,
        &SERVE_SHARDS_TOTAL,
        &SERVE_PARTIAL,
        &TRACE_EVENTS,
        &TRACE_DROPPED,
        &RACE_SCHEDULES,
        &RACE_VIOLATIONS,
    ] {
        c.reset();
    }
    TAPE_LIVE.store(0, Ordering::Relaxed);
    TAPE_PEAK.store(0, Ordering::Relaxed);
    SERVE_QUEUE_PEAK.store(0, Ordering::Relaxed);
    WAL_TAIL_PEAK.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_estimate_matches_closed_form() {
        assert_eq!(matmul_flop_estimate(3, 4, 5), 2 * 3 * 4 * 5);
        assert_eq!(matmul_flop_estimate(64, 64, 64), 524_288);
        assert_eq!(matmul_flop_estimate(0, 7, 9), 0);
    }
}
