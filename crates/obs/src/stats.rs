//! Training-telemetry value types shared across the stack, plus the
//! global per-epoch record store the bench summarizer reads.

use std::sync::{Mutex, OnceLock};

/// Per-objective loss decomposition for one PMMRec epoch. Components
/// carry their weights (the auxiliary terms are already scaled by
/// `aux_weight`), so they sum to the reported total loss.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LossBreakdown {
    /// Next-item (DAP) cross-entropy, the main objective.
    pub dap: f32,
    /// Cross-modal contrastive (NICL), weighted.
    pub nicl: f32,
    /// Noised-item detection (NID), weighted.
    pub nid: f32,
    /// Robustness-aware contrastive (RCL), weighted.
    pub rcl: f32,
}

impl LossBreakdown {
    /// Sum of the weighted components — equals the training loss.
    pub fn total(&self) -> f32 {
        self.dap + self.nicl + self.nid + self.rcl
    }
}

/// What a model can report about one training epoch beyond the scalar
/// loss. All fields are averages over the epoch's optimization steps.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochStats {
    /// Mean total training loss.
    pub loss: f32,
    /// Per-objective decomposition, for models that have one.
    pub breakdown: Option<LossBreakdown>,
    /// Mean global gradient norm (pre-clipping).
    pub grad_norm: f32,
    /// Global parameter L2 norm at epoch end.
    pub param_norm: f32,
    /// Optimization steps taken.
    pub steps: u32,
    /// Steps skipped by an anomaly guard (non-finite loss or gradient
    /// norm); zero for models without one.
    pub skipped: u32,
}

impl EpochStats {
    /// Stats carrying only a scalar loss — the default for models
    /// without richer telemetry.
    pub fn from_loss(loss: f32) -> Self {
        EpochStats { loss, ..Default::default() }
    }
}

/// One epoch's telemetry as recorded by the training harness:
/// model-reported stats plus harness-measured wall clock and counter
/// deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochRecord {
    /// Epoch index within its training run.
    pub epoch: usize,
    /// Wall-clock seconds spent in `train_epoch`.
    pub wall_s: f64,
    /// Estimated matmul FLOPs executed during the epoch.
    pub flops: u64,
    /// High-water mark of live backward-tape nodes so far.
    pub tape_peak: u64,
    /// Model-reported stats for the epoch.
    pub stats: EpochStats,
}

impl EpochRecord {
    /// Estimated achieved FLOP/s; zero when the clock delta is too
    /// small to divide by.
    pub fn flops_per_sec(&self) -> f64 {
        if self.wall_s > 1e-9 {
            self.flops as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

fn epochs() -> &'static Mutex<Vec<EpochRecord>> {
    static EPOCHS: OnceLock<Mutex<Vec<EpochRecord>>> = OnceLock::new();
    EPOCHS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Append an epoch record to the global store and mirror it into the
/// JSONL sink. Called by the harness only while collection is enabled.
pub fn record_epoch(record: EpochRecord) {
    crate::sink::emit_epoch(&record);
    epochs().lock().unwrap().push(record);
}

/// Snapshot of all recorded epochs, in recording order.
pub fn epoch_records() -> Vec<EpochRecord> {
    epochs().lock().unwrap().clone()
}

/// Clear the epoch store.
pub fn reset_epochs() {
    epochs().lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_is_component_sum() {
        let b = LossBreakdown { dap: 1.5, nicl: 0.25, nid: 0.125, rcl: 0.0625 };
        assert!((b.total() - 1.9375).abs() < 1e-6);
    }

    #[test]
    fn flops_per_sec_guards_zero_wall() {
        let mut r = EpochRecord { flops: 1_000_000, wall_s: 0.5, ..Default::default() };
        assert!((r.flops_per_sec() - 2_000_000.0).abs() < 1.0);
        r.wall_s = 0.0;
        assert_eq!(r.flops_per_sec(), 0.0);
    }
}
