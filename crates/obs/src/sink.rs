//! JSONL event sink. When open, every event is one flat JSON object on
//! its own line; when closed, emission is a no-op costing one mutex-
//! free atomic check via `OnceLock` initialization state.
//!
//! Event kinds (`"ev"` field): `log`, `epoch`, `cache`, `guard`,
//! `span`, `counter`. See README "Observability" for the full schema.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::JsonObj;
use crate::log::Level;
use crate::span::SpanStat;
use crate::stats::EpochRecord;

fn sink() -> &'static Mutex<Option<BufWriter<File>>> {
    static SINK: OnceLock<Mutex<Option<BufWriter<File>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

fn ts_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Open (or replace) the JSONL sink at `path`.
pub fn open(path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    *sink().lock().unwrap() = Some(BufWriter::new(file));
    Ok(())
}

/// Whether a sink is currently open.
pub fn is_open() -> bool {
    sink().lock().unwrap().is_some()
}

/// Flush and close the sink; later emissions are dropped.
pub fn close() {
    if let Some(mut w) = sink().lock().unwrap().take() {
        let _ = w.flush();
    }
}

fn write_line(line: String) {
    if let Some(w) = sink().lock().unwrap().as_mut() {
        let _ = writeln!(w, "{line}");
    }
}

/// Emit a caller-built object as one line. This is the extension point
/// for downstream crates (e.g. request tracing) that define their own
/// event kinds; callers set their own `"ev"` field.
pub fn emit_obj(obj: JsonObj) {
    if !is_open() {
        return;
    }
    write_line(obj.finish());
}

pub fn emit_log(level: Level, target: &str, msg: &str) {
    if !is_open() {
        return;
    }
    write_line(
        JsonObj::new()
            .str("ev", "log")
            .u64("ts_ms", ts_ms())
            .str("level", level.as_str())
            .str("target", target)
            .str("msg", msg)
            .finish(),
    );
}

/// Checkpoint-cache probe outcome.
pub fn emit_cache(key: &str, hit: bool, path: &str) {
    if !is_open() {
        return;
    }
    write_line(
        JsonObj::new()
            .str("ev", "cache")
            .u64("ts_ms", ts_ms())
            .str("key", key)
            .bool("hit", hit)
            .str("path", path)
            .finish(),
    );
}

/// One finished training epoch with its telemetry deltas.
pub fn emit_epoch(r: &EpochRecord) {
    if !is_open() {
        return;
    }
    let mut obj = JsonObj::new()
        .str("ev", "epoch")
        .u64("ts_ms", ts_ms())
        .u64("epoch", r.epoch as u64)
        .f64("loss", r.stats.loss as f64)
        .f64("grad_norm", r.stats.grad_norm as f64)
        .f64("param_norm", r.stats.param_norm as f64)
        .f64("wall_s", r.wall_s)
        .u64("flops", r.flops)
        .u64("tape_peak", r.tape_peak)
        .u64("skipped", u64::from(r.stats.skipped));
    if let Some(b) = r.stats.breakdown {
        obj = obj
            .f64("dap", b.dap as f64)
            .f64("nicl", b.nicl as f64)
            .f64("nid", b.nid as f64)
            .f64("rcl", b.rcl as f64);
    }
    write_line(obj.finish());
}

/// A fault-tolerance event: `kind` is one of `anomaly` (step skipped),
/// `rollback` (parameters restored), `recovery` (training resumed after
/// rollback), `ckpt_fallback` (corrupt checkpoint skipped),
/// `io_retry` (guarded IO succeeded after retry) or `degraded`
/// (serving with a missing modality). `seq` is the step/epoch/save
/// index the event refers to.
pub fn emit_guard(kind: &str, seq: u64, detail: &str) {
    if !is_open() {
        return;
    }
    write_line(
        JsonObj::new()
            .str("ev", "guard")
            .u64("ts_ms", ts_ms())
            .str("kind", kind)
            .u64("seq", seq)
            .str("detail", detail)
            .finish(),
    );
}

pub fn emit_span(path: &str, stat: &SpanStat) {
    if !is_open() {
        return;
    }
    write_line(
        JsonObj::new()
            .str("ev", "span")
            .str("path", path)
            .u64("count", stat.count)
            .u64("total_ns", stat.total_ns)
            .finish(),
    );
}

pub fn emit_counter(name: &str, value: u64) {
    if !is_open() {
        return;
    }
    write_line(
        JsonObj::new()
            .str("ev", "counter")
            .str("name", name)
            .u64("value", value)
            .finish(),
    );
}

/// Dump the aggregated span profile and all counters as events — the
/// usual last step before [`close`].
pub fn flush_profile() {
    for (path, stat) in crate::span::profile_snapshot() {
        emit_span(&path, &stat);
    }
    for (name, value) in crate::counter::counters_snapshot() {
        emit_counter(name, value);
    }
}
