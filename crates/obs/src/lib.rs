//! `pmm-obs` — observability for the PMMRec stack.
//!
//! Std-only, zero external dependencies, and near-zero cost when
//! disabled: every collection point is gated on one relaxed atomic
//! load. Four pieces:
//!
//! - [`span`]: RAII scoped timers with thread-local nesting that
//!   aggregate into a hierarchical wall-clock profile keyed by slash
//!   paths such as `epoch/forward/attention/matmul`.
//! - [`counter`]: monotonic global counters for matmul FLOPs (estimated
//!   from shapes), tensor allocations and bytes, backward-tape nodes
//!   (with a live gauge and high-water mark), and eval cases scored.
//! - [`log`]: a single leveled logger (error < warn < info < debug <
//!   trace) replacing scattered `eprintln!`, with `obs_*!` macros.
//! - [`sink`]: an optional JSONL event stream (logs, epochs, cache
//!   probes, final span/counter dumps) for machine-readable traces.
//!
//! Telemetry *collection* (spans + counters) is off by default and
//! switched by [`set_enabled`]; the logger always works. The usual
//! entry point is [`init_from_env`]:
//!
//! - `PMM_OBS=<path>` — enable collection and stream JSONL to `<path>`.
//! - `PMM_OBS_LOG=<error|warn|info|debug|trace>` — logger threshold
//!   (default `info`).

pub mod counter;
pub mod json;
pub mod log;
pub mod sink;
pub mod span;
pub mod stats;

use std::sync::atomic::{AtomicBool, Ordering};

pub use counter::{record_matmul, Counter};
pub use log::Level;
pub use span::{span, SpanStat};
pub use stats::{EpochRecord, EpochStats, LossBreakdown};

/// Master switch for span/counter collection.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether span/counter collection is on. One relaxed load; this is
/// the only cost telemetry adds to hot paths when disabled.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn span/counter collection on or off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Configure observability from the environment; returns whether
/// collection was enabled. See the crate docs for the variables.
pub fn init_from_env() -> bool {
    if let Ok(lvl) = std::env::var("PMM_OBS_LOG") {
        match Level::parse(&lvl) {
            Some(l) => log::set_max_level(l),
            None => obs_warn!("obs", "PMM_OBS_LOG={lvl} is not a log level; keeping {}", log::max_level().as_str()),
        }
    }
    match std::env::var("PMM_OBS") {
        Ok(path) if !path.is_empty() => {
            match sink::open(std::path::Path::new(&path)) {
                Ok(()) => {
                    set_enabled(true);
                    obs_info!("obs", "telemetry on, JSONL trace -> {path}");
                    true
                }
                Err(e) => {
                    obs_warn!("obs", "cannot open PMM_OBS={path}: {e}; telemetry stays off");
                    false
                }
            }
        }
        _ => false,
    }
}

/// Reset all global telemetry state (profile, counters, epoch records).
/// Intended for tests and for benchmark drivers that scope collection
/// to one run.
pub fn reset() {
    span::reset_profile();
    counter::reset_counters();
    stats::reset_epochs();
}
