//! Hand-rolled JSON helpers: an object writer for the sink and a flat
//! parser for round-trip validation. Std-only by design.
//!
//! The parser handles exactly what the sink emits — one-level objects
//! whose values are strings, finite numbers, booleans, or null — and
//! rejects anything else.

use std::collections::HashMap;

/// Escape a string for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Incremental builder for one flat JSON object.
#[derive(Default)]
pub struct JsonObj {
    buf: String,
}

impl JsonObj {
    pub fn new() -> Self {
        JsonObj { buf: String::from("{") }
    }

    fn sep(&mut self) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
    }

    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.sep();
        self.buf.push_str(&format!("\"{}\":\"{}\"", escape(key), escape(value)));
        self
    }

    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.sep();
        self.buf.push_str(&format!("\"{}\":{}", escape(key), value));
        self
    }

    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.sep();
        if value.is_finite() {
            // Enough digits to round-trip f32-precision telemetry.
            self.buf.push_str(&format!("\"{}\":{:e}", escape(key), value));
        } else {
            self.buf.push_str(&format!("\"{}\":null", escape(key)));
        }
        self
    }

    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.sep();
        self.buf.push_str(&format!("\"{}\":{}", escape(key), value));
        self
    }

    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A value in a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl JsonValue {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse one flat JSON object (no nesting, no arrays). Returns `None`
/// on any syntax the sink never produces.
pub fn parse_flat(line: &str) -> Option<HashMap<String, JsonValue>> {
    let mut chars = line.trim().chars().peekable();
    if chars.next()? != '{' {
        return None;
    }
    let mut map = HashMap::new();
    loop {
        skip_ws(&mut chars);
        match chars.peek()? {
            '}' => {
                chars.next();
                skip_ws(&mut chars);
                return if chars.next().is_none() { Some(map) } else { None };
            }
            ',' => {
                chars.next();
                continue;
            }
            '"' => {
                let key = parse_string(&mut chars)?;
                skip_ws(&mut chars);
                if chars.next()? != ':' {
                    return None;
                }
                skip_ws(&mut chars);
                let value = parse_value(&mut chars)?;
                map.insert(key, value);
            }
            _ => return None,
        }
    }
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars>) {
    while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = (0..4).map(|_| chars.next()).collect::<Option<_>>()?;
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

fn parse_value(chars: &mut std::iter::Peekable<std::str::Chars>) -> Option<JsonValue> {
    match chars.peek()? {
        '"' => parse_string(chars).map(JsonValue::Str),
        't' => take_literal(chars, "true").map(|_| JsonValue::Bool(true)),
        'f' => take_literal(chars, "false").map(|_| JsonValue::Bool(false)),
        'n' => take_literal(chars, "null").map(|_| JsonValue::Null),
        _ => {
            let mut num = String::new();
            while matches!(chars.peek(), Some(c) if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')) {
                num.push(chars.next().unwrap());
            }
            num.parse::<f64>().ok().map(JsonValue::Num)
        }
    }
}

fn take_literal(chars: &mut std::iter::Peekable<std::str::Chars>, lit: &str) -> Option<()> {
    for expected in lit.chars() {
        if chars.next()? != expected {
            return None;
        }
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_output_parses_back() {
        let line = JsonObj::new()
            .str("ev", "log")
            .str("msg", "tab\there \"quoted\" back\\slash")
            .u64("count", 42)
            .f64("loss", 0.125)
            .f64("nan", f64::NAN)
            .bool("hit", true)
            .finish();
        let map = parse_flat(&line).expect("round trip");
        assert_eq!(map["ev"], JsonValue::Str("log".into()));
        assert_eq!(map["msg"].as_str().unwrap(), "tab\there \"quoted\" back\\slash");
        assert_eq!(map["count"].as_f64().unwrap(), 42.0);
        assert_eq!(map["loss"].as_f64().unwrap(), 0.125);
        assert_eq!(map["nan"], JsonValue::Null);
        assert_eq!(map["hit"], JsonValue::Bool(true));
    }

    #[test]
    fn parser_rejects_junk() {
        assert!(parse_flat("").is_none());
        assert!(parse_flat("{\"a\":1").is_none());
        assert!(parse_flat("{\"a\":}").is_none());
        assert!(parse_flat("[1,2]").is_none());
        assert!(parse_flat("{\"a\":1} trailing").is_none());
    }

    #[test]
    fn empty_object_parses() {
        assert!(parse_flat("{}").unwrap().is_empty());
        assert_eq!(JsonObj::new().finish(), "{}");
    }
}
