//! Leveled logging: one global threshold, stderr output, and mirrored
//! emission into the JSONL sink when one is open.

use std::sync::atomic::{AtomicU8, Ordering};

/// Severity levels, ordered so that `Error < Warn < Info < Debug <
/// Trace` — a message is shown when its level is at or below the
/// configured maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
    Trace = 4,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parse a level name (case-insensitive); accepts the common
    /// abbreviations cargo users expect.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" | "err" | "e" => Some(Level::Error),
            "warn" | "warning" | "w" => Some(Level::Warn),
            "info" | "i" => Some(Level::Info),
            "debug" | "d" => Some(Level::Debug),
            "trace" | "t" => Some(Level::Trace),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

/// Global logger threshold; `info` by default so progress messages
/// show but debug chatter does not.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

pub fn max_level() -> Level {
    Level::from_u8(MAX_LEVEL.load(Ordering::Relaxed))
}

/// Whether a message at `level` would currently be emitted.
#[inline]
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Emit a pre-formatted message: one line on stderr, plus a `log`
/// event in the JSONL sink when one is open. Prefer the `obs_*!`
/// macros, which skip formatting entirely below the threshold.
pub fn log(level: Level, target: &str, msg: &str) {
    if !enabled(level) {
        return;
    }
    eprintln!("[{} {target}] {msg}", level.as_str());
    crate::sink::emit_log(level, target, msg);
}

/// Log at an explicit [`Level`]: `obs_log!(Level::Info, "target", "fmt", ..)`.
#[macro_export]
macro_rules! obs_log {
    ($level:expr, $target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($level) {
            $crate::log::log($level, $target, &format!($($arg)*));
        }
    };
}

#[macro_export]
macro_rules! obs_error {
    ($target:expr, $($arg:tt)*) => { $crate::obs_log!($crate::Level::Error, $target, $($arg)*) };
}

#[macro_export]
macro_rules! obs_warn {
    ($target:expr, $($arg:tt)*) => { $crate::obs_log!($crate::Level::Warn, $target, $($arg)*) };
}

#[macro_export]
macro_rules! obs_info {
    ($target:expr, $($arg:tt)*) => { $crate::obs_log!($crate::Level::Info, $target, $($arg)*) };
}

#[macro_export]
macro_rules! obs_debug {
    ($target:expr, $($arg:tt)*) => { $crate::obs_log!($crate::Level::Debug, $target, $($arg)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("trace"), Some(Level::Trace));
        assert_eq!(Level::parse("verbose"), None);
        for l in [Level::Error, Level::Warn, Level::Info, Level::Debug, Level::Trace] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
    }
}
