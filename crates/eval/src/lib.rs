//! # pmm-eval
//!
//! Full-catalogue ranking evaluation (HR@k / NDCG@k with leave-one-out
//! cases, as in the paper: "we rank the prediction results on the whole
//! dataset"), a model-agnostic [`SeqRecommender`] trait, and a training
//! harness with early stopping and convergence-curve recording
//! (Figure 3).

pub mod harness;
pub mod metrics;
pub mod recommender;
pub mod significance;

pub use harness::{train_model, ConvergencePoint, GuardPolicy, TrainConfig, TrainResult};
pub use metrics::{evaluate_cases, evaluate_ranks, mrr, rank_of_target, ranks_for_cases, MetricSet, TOP_KS};
pub use recommender::SeqRecommender;
pub use significance::{paired_bootstrap, BootstrapReport};
