//! The model-agnostic interface every recommender implements.

use pmm_data::split::LeaveOneOut;
use rand::rngs::StdRng;

/// A trainable sequential recommender over a fixed item catalogue.
///
/// Implemented by PMMRec (every transfer/ablation variant) and by all
/// eight baselines, so the experiment harness treats them uniformly.
pub trait SeqRecommender {
    /// Short display name for tables (e.g. `SASRec`, `PMMRec-T`).
    fn name(&self) -> &str;

    /// Catalogue size (ranking candidates).
    fn n_items(&self) -> usize;

    /// Runs one training epoch over the given sequences; returns the
    /// mean training loss.
    fn train_epoch(&mut self, train: &[Vec<usize>], rng: &mut StdRng) -> f32;

    /// Rich telemetry for the most recent [`Self::train_epoch`] call:
    /// per-objective loss breakdown and gradient/parameter norms.
    /// Models without richer telemetry return `None` and the harness
    /// falls back to the scalar loss.
    fn epoch_stats(&self) -> Option<pmm_obs::EpochStats> {
        None
    }

    /// Scores the full catalogue for each case's prefix. Returns one
    /// `n_items()`-sized score row per case (higher = better).
    fn score_cases(&self, cases: &[LeaveOneOut]) -> Vec<Vec<f32>>;

    /// Applies the run's anomaly-guard policy (LR backoff, rollback
    /// thresholds) before training starts. The default is a no-op so
    /// guard-less models (all baselines) ignore it.
    fn set_guard_policy(&mut self, _policy: crate::harness::GuardPolicy) {}
}

#[cfg(test)]
pub(crate) mod testing {
    use super::*;

    /// A deterministic oracle used by harness tests: scores the true
    /// target highest with probability controlled by `skill`.
    pub struct OracleModel {
        pub n_items: usize,
        pub skill: f32,
        pub epochs_seen: usize,
    }

    impl SeqRecommender for OracleModel {
        fn name(&self) -> &str {
            "Oracle"
        }

        fn n_items(&self) -> usize {
            self.n_items
        }

        fn train_epoch(&mut self, _train: &[Vec<usize>], _rng: &mut StdRng) -> f32 {
            self.epochs_seen += 1;
            // Loss decreases with epochs; skill improves.
            self.skill = (self.skill + 0.2).min(1.0);
            1.0 / self.epochs_seen as f32
        }

        fn score_cases(&self, cases: &[LeaveOneOut]) -> Vec<Vec<f32>> {
            cases
                .iter()
                .map(|c| {
                    let mut s = vec![0.0f32; self.n_items];
                    // Deterministic pseudo-noise from the prefix.
                    for (i, v) in s.iter_mut().enumerate() {
                        *v = ((i * 2654435761 + c.prefix.len()) % 97) as f32 / 97.0;
                    }
                    s[c.target] += self.skill * 2.0;
                    s
                })
                .collect()
        }
    }
}
