//! Paired bootstrap significance testing for ranking comparisons.
//!
//! Two models evaluated on the *same* leave-one-out cases produce
//! paired per-case ranks; resampling cases with replacement estimates
//! how often the observed metric difference would flip sign. At this
//! reproduction's scale (hundreds of cases) single-run differences of a
//! few HR@10 points are frequently not significant — the experiment
//! binaries report this to separate signal from noise.

use rand::rngs::StdRng;
use rand::Rng;

/// Result of a paired bootstrap comparison of per-case scores.
#[derive(Debug, Clone, Copy)]
pub struct BootstrapReport {
    /// Observed mean difference (a − b).
    pub observed_diff: f32,
    /// Fraction of bootstrap resamples where the difference kept the
    /// observed sign (1.0 = fully stable, ~0.5 = pure noise).
    pub sign_stability: f32,
    /// Bootstrap resamples drawn.
    pub resamples: usize,
}

impl BootstrapReport {
    /// Conventional "significant at ~95%" reading of the stability.
    pub fn significant(&self) -> bool {
        self.sign_stability >= 0.95
    }
}

/// Paired bootstrap over per-case metric contributions.
///
/// `a` and `b` are per-case values of the *same* metric for two models
/// over identical cases (e.g. per-case NDCG@10 contributions, or 0/1
/// hit indicators). Panics if the lengths differ or are empty.
#[track_caller]
pub fn paired_bootstrap(a: &[f32], b: &[f32], resamples: usize, rng: &mut StdRng) -> BootstrapReport {
    assert_eq!(a.len(), b.len(), "paired_bootstrap: unpaired inputs");
    assert!(!a.is_empty(), "paired_bootstrap: no cases");
    let n = a.len();
    let diffs: Vec<f32> = a.iter().zip(b).map(|(&x, &y)| x - y).collect();
    let observed: f32 = diffs.iter().sum::<f32>() / n as f32;
    if observed == 0.0 {
        return BootstrapReport {
            observed_diff: 0.0,
            sign_stability: 0.5,
            resamples,
        };
    }
    let mut same_sign = 0usize;
    for _ in 0..resamples {
        let mut acc = 0.0f32;
        for _ in 0..n {
            acc += diffs[rng.random_range(0..n)];
        }
        if (acc > 0.0) == (observed > 0.0) {
            same_sign += 1;
        }
    }
    BootstrapReport {
        observed_diff: observed,
        sign_stability: same_sign as f32 / resamples as f32,
        resamples,
    }
}

/// Per-case hit indicators at cut-off `k` from 0-based ranks — the
/// inputs [`paired_bootstrap`] expects for an HR@k comparison.
pub fn hit_indicators(ranks: &[f32], k: usize) -> Vec<f32> {
    ranks
        .iter()
        .map(|&r| if (r as usize) < k { 1.0 } else { 0.0 })
        .collect()
}

/// Per-case NDCG@k contributions from 0-based ranks.
pub fn ndcg_contributions(ranks: &[f32], k: usize) -> Vec<f32> {
    ranks
        .iter()
        .map(|&r| {
            if (r as usize) < k {
                1.0 / (r + 2.0).log2()
            } else {
                0.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn clear_difference_is_significant() {
        let a = vec![1.0; 200];
        let b = vec![0.0; 200];
        let mut rng = StdRng::seed_from_u64(0);
        let r = paired_bootstrap(&a, &b, 500, &mut rng);
        assert!(r.significant());
        assert!((r.observed_diff - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pure_noise_is_not_significant() {
        // Alternating wins: mean difference ~0 with high variance.
        let a: Vec<f32> = (0..200).map(|i| (i % 2) as f32).collect();
        let b: Vec<f32> = (0..200).map(|i| ((i + 1) % 2) as f32).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let r = paired_bootstrap(&a, &b, 500, &mut rng);
        assert!(!r.significant(), "stability {}", r.sign_stability);
    }

    #[test]
    fn identical_inputs_report_half_stability() {
        let a = vec![0.5; 50];
        let mut rng = StdRng::seed_from_u64(2);
        let r = paired_bootstrap(&a, &a, 100, &mut rng);
        assert_eq!(r.observed_diff, 0.0);
        assert_eq!(r.sign_stability, 0.5);
    }

    #[test]
    fn indicator_helpers_match_metric_definitions() {
        let ranks = [0.0f32, 9.0, 10.0, 50.0];
        assert_eq!(hit_indicators(&ranks, 10), vec![1.0, 1.0, 0.0, 0.0]);
        let c = ndcg_contributions(&ranks, 10);
        assert!((c[0] - 1.0).abs() < 1e-6);
        assert!((c[1] - 1.0 / 11.0f32.log2()).abs() < 1e-6);
        assert_eq!(c[2], 0.0);
    }

    #[test]
    #[should_panic(expected = "unpaired")]
    fn unpaired_inputs_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        paired_bootstrap(&[1.0], &[1.0, 2.0], 10, &mut rng);
    }
}
