//! Training harness: epoch loop, early stopping on validation NDCG@10,
//! and convergence-curve recording (the data behind Figure 3).

use crate::metrics::{evaluate_cases, MetricSet};
use crate::recommender::SeqRecommender;
use pmm_data::split::SplitDataset;
use pmm_obs::{obs_log, EpochRecord, EpochStats, Level};
use rand::rngs::StdRng;
use std::time::Instant;

/// Anomaly-guard policy knobs, lifted out of the model so experiment
/// configs and chaos recipes can tune them per run. The harness hands
/// these to the model via [`SeqRecommender::set_guard_policy`] before
/// the first epoch; models without a guard ignore them.
///
/// The defaults mirror the guard's historical hard-coded values:
/// tolerate up to 3 consecutive anomalous steps before rolling back,
/// halve the learning rate per anomalous step, and never back off
/// below `1e-6`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardPolicy {
    /// Master switch; disabled treats every step as normal.
    pub enabled: bool,
    /// Consecutive anomalous steps tolerated before a rollback.
    pub max_consecutive: usize,
    /// Multiplicative learning-rate backoff applied per anomalous step.
    pub lr_backoff: f32,
    /// Floor under the backed-off learning rate.
    pub min_lr: f32,
}

impl Default for GuardPolicy {
    fn default() -> Self {
        GuardPolicy { enabled: true, max_consecutive: 3, lr_backoff: 0.5, min_lr: 1e-6 }
    }
}

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Maximum epochs.
    pub max_epochs: usize,
    /// Early-stopping patience in eval rounds without validation
    /// improvement (`0` disables early stopping).
    pub patience: usize,
    /// Evaluate every `eval_every` epochs.
    pub eval_every: usize,
    /// Verbosity of this run's progress lines: `Info` prints one line
    /// per eval round, `Debug` adds the loss breakdown and norms,
    /// `Warn` (the default) is silent.
    pub log_level: Level,
    /// Epochs already completed before this call — the resume point
    /// after a crash-restart. The loop runs epochs
    /// `start_epoch + 1 ..= max_epochs`, so curve epoch numbers stay
    /// globally consistent across restarts (pair with
    /// `pmm_nn::checkpoint::CheckpointRotation::load_latest`, whose
    /// returned sequence number is the natural value here).
    pub start_epoch: usize,
    /// Anomaly-guard policy applied to the model before the first
    /// epoch (see [`GuardPolicy`]); models without a guard ignore it.
    pub guard: GuardPolicy,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            max_epochs: 30,
            patience: 3,
            eval_every: 1,
            log_level: Level::Warn,
            start_epoch: 0,
            guard: GuardPolicy::default(),
        }
    }
}

/// One evaluation point on the convergence curve.
#[derive(Debug, Clone, Copy)]
pub struct ConvergencePoint {
    /// Epoch number (1-based).
    pub epoch: usize,
    /// Mean training loss of the epoch.
    pub loss: f32,
    /// Validation metrics at this epoch.
    pub valid: MetricSet,
    /// Model-reported epoch telemetry (loss breakdown, norms). Falls
    /// back to [`EpochStats::from_loss`] for models without richer
    /// reporting.
    pub stats: EpochStats,
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Test metrics measured at the best-validation epoch (the paper's
    /// protocol: model selection on validation, report on test).
    pub test: MetricSet,
    /// Validation metrics at the best epoch.
    pub valid: MetricSet,
    /// Epoch achieving the best validation NDCG@10.
    pub best_epoch: usize,
    /// Full convergence curve.
    pub curve: Vec<ConvergencePoint>,
}

/// Trains `model` on `split.train` with early stopping on validation
/// NDCG@10; test metrics are recorded at every eval round and the pair
/// from the best-validation round is reported.
pub fn train_model(
    model: &mut dyn SeqRecommender,
    split: &SplitDataset,
    cfg: &TrainConfig,
    rng: &mut StdRng,
) -> TrainResult {
    let mut best = TrainResult {
        test: MetricSet::default(),
        valid: MetricSet::default(),
        best_epoch: 0,
        curve: Vec::new(),
    };
    let mut best_score = f32::NEG_INFINITY;
    let mut rounds_since_best = 0usize;

    model.set_guard_policy(cfg.guard);
    let first = cfg.start_epoch + 1;
    for epoch in first..=cfg.max_epochs.max(first) {
        let flops_before = pmm_obs::counter::MATMUL_FLOPS.get();
        let clock = Instant::now();
        let loss = {
            let _sp = pmm_obs::span("epoch");
            model.train_epoch(&split.train, rng)
        };
        let wall_s = clock.elapsed().as_secs_f64();
        let stats = model.epoch_stats().unwrap_or_else(|| EpochStats::from_loss(loss));
        if pmm_obs::enabled() {
            pmm_obs::stats::record_epoch(EpochRecord {
                epoch,
                wall_s,
                flops: pmm_obs::counter::MATMUL_FLOPS.get().saturating_sub(flops_before),
                tape_peak: pmm_obs::counter::tape_peak(),
                stats,
            });
        }
        if !loss.is_finite() {
            // Every step of the epoch was anomalous (the model's guard
            // reports NaN rather than a fake 0). Evaluating or running
            // model selection on it would be noise; log and move on —
            // the guard has already rolled the weights back.
            obs_log!(
                Level::Warn,
                "train",
                "[{}] epoch {epoch:3} had no applied steps ({} skipped); eval round skipped",
                model.name(),
                stats.skipped
            );
            continue;
        }
        if epoch % cfg.eval_every.max(1) != 0 && epoch != cfg.max_epochs {
            continue;
        }
        let valid = {
            let _sp = pmm_obs::span("eval");
            evaluate_cases(model, &split.valid)
        };
        best.curve.push(ConvergencePoint { epoch, loss, valid, stats });
        if cfg.log_level >= Level::Info {
            obs_log!(
                Level::Info,
                "train",
                "[{}] epoch {epoch:3} loss {loss:7.4} valid {valid}",
                model.name()
            );
        }
        if cfg.log_level >= Level::Debug {
            if let Some(b) = stats.breakdown {
                obs_log!(
                    Level::Debug,
                    "train",
                    "[{}] epoch {epoch:3} dap {:.4} nicl {:.4} nid {:.4} rcl {:.4} |g| {:.3} |w| {:.2}",
                    model.name(),
                    b.dap,
                    b.nicl,
                    b.nid,
                    b.rcl,
                    stats.grad_norm,
                    stats.param_norm
                );
            }
        }
        if valid.ndcg10() > best_score {
            best_score = valid.ndcg10();
            best.valid = valid;
            best.best_epoch = epoch;
            best.test = {
                let _sp = pmm_obs::span("eval");
                evaluate_cases(model, &split.test)
            };
            rounds_since_best = 0;
        } else {
            rounds_since_best += 1;
            if cfg.patience > 0 && rounds_since_best >= cfg.patience {
                break;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recommender::testing::OracleModel;
    use pmm_data::dataset::Dataset;
    use pmm_data::registry::{build_dataset, DatasetId, Scale};
    use pmm_data::world::{World, WorldConfig};
    use rand::SeedableRng;

    fn tiny_split() -> SplitDataset {
        let world = World::new(WorldConfig::default());
        let ds: Dataset = build_dataset(&world, DatasetId::HmClothes, Scale::Tiny, 42);
        SplitDataset::new(ds)
    }

    #[test]
    fn harness_improves_oracle_and_records_curve() {
        let split = tiny_split();
        let mut model = OracleModel {
            n_items: split.n_items(),
            skill: 0.0,
            epochs_seen: 0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = TrainConfig {
            max_epochs: 8,
            patience: 0,
            eval_every: 1,
            log_level: Level::Warn,
            start_epoch: 0,
            guard: GuardPolicy::default(),
        };
        let result = train_model(&mut model, &split, &cfg, &mut rng);
        assert_eq!(result.curve.len(), 8);
        // Skill saturates at 1.0 -> near-perfect test HR.
        assert!(result.test.hr10() > 90.0, "{:?}", result.test);
        // Loss decreases monotonically for the oracle.
        for w in result.curve.windows(2) {
            assert!(w[1].loss <= w[0].loss);
        }
    }

    #[test]
    fn early_stopping_halts_stagnant_training() {
        let split = tiny_split();
        let mut model = OracleModel {
            n_items: split.n_items(),
            skill: 1.0, // already perfect: no improvement possible
            epochs_seen: 0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = TrainConfig {
            max_epochs: 50,
            patience: 2,
            eval_every: 1,
            log_level: Level::Warn,
            start_epoch: 0,
            guard: GuardPolicy::default(),
        };
        let result = train_model(&mut model, &split, &cfg, &mut rng);
        assert!(result.curve.len() <= 4, "ran {} rounds", result.curve.len());
        assert_eq!(result.best_epoch, 1);
    }

    #[test]
    fn eval_every_skips_rounds() {
        let split = tiny_split();
        let mut model = OracleModel {
            n_items: split.n_items(),
            skill: 0.0,
            epochs_seen: 0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = TrainConfig {
            max_epochs: 6,
            patience: 0,
            eval_every: 2,
            log_level: Level::Warn,
            start_epoch: 0,
            guard: GuardPolicy::default(),
        };
        let result = train_model(&mut model, &split, &cfg, &mut rng);
        assert_eq!(result.curve.len(), 3);
        assert!(result.curve.iter().all(|p| p.epoch % 2 == 0));
    }

    #[test]
    fn resume_continues_epoch_numbering() {
        let split = tiny_split();
        let mut model = OracleModel {
            n_items: split.n_items(),
            skill: 0.0,
            epochs_seen: 0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        // Simulate a crash-restart after epoch 5 of 8.
        let cfg = TrainConfig {
            max_epochs: 8,
            patience: 0,
            eval_every: 1,
            log_level: Level::Warn,
            start_epoch: 5,
            guard: GuardPolicy::default(),
        };
        let result = train_model(&mut model, &split, &cfg, &mut rng);
        let epochs: Vec<usize> = result.curve.iter().map(|p| p.epoch).collect();
        assert_eq!(epochs, vec![6, 7, 8], "resumed run continues global numbering");
        assert_eq!(model.epochs_seen, 3, "only the remaining epochs are trained");
        // A fully-complete run resumes to at least one epoch (the loop
        // never underflows past `start_epoch`).
        let done = TrainConfig { start_epoch: 8, ..cfg };
        let result = train_model(&mut model, &split, &done, &mut rng);
        assert_eq!(result.curve.len(), 1);
        assert_eq!(result.curve[0].epoch, 9);
    }

    /// Model whose first `nan_epochs` epochs report a NaN loss (as the
    /// anomaly guard does when every step of an epoch was skipped).
    struct FlakyModel {
        inner: OracleModel,
        nan_epochs: usize,
    }

    impl SeqRecommender for FlakyModel {
        fn name(&self) -> &str {
            "Flaky"
        }
        fn n_items(&self) -> usize {
            self.inner.n_items
        }
        fn train_epoch(&mut self, train: &[Vec<usize>], rng: &mut StdRng) -> f32 {
            let loss = self.inner.train_epoch(train, rng);
            if self.inner.epochs_seen <= self.nan_epochs {
                f32::NAN
            } else {
                loss
            }
        }
        fn score_cases(&self, cases: &[pmm_data::split::LeaveOneOut]) -> Vec<Vec<f32>> {
            self.inner.score_cases(cases)
        }
    }

    #[test]
    fn non_finite_epochs_skip_eval_but_not_the_run() {
        let split = tiny_split();
        let mut model = FlakyModel {
            inner: OracleModel {
                n_items: split.n_items(),
                skill: 0.0,
                epochs_seen: 0,
            },
            nan_epochs: 2,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = TrainConfig {
            max_epochs: 6,
            patience: 2, // must NOT count NaN epochs against patience
            eval_every: 1,
            log_level: Level::Warn,
            start_epoch: 0,
            guard: GuardPolicy::default(),
        };
        let result = train_model(&mut model, &split, &cfg, &mut rng);
        // Epochs 1-2 are anomalous: no curve point, no NaN anywhere,
        // and the NaN rounds don't count against patience (the run
        // reaches epoch 3 and saturates there; patience then stops it
        // two stagnant rounds later).
        let epochs: Vec<usize> = result.curve.iter().map(|p| p.epoch).collect();
        assert_eq!(epochs, vec![3, 4, 5]);
        assert!(result.curve.iter().all(|p| p.loss.is_finite()));
        assert_eq!(result.best_epoch, 3);
    }

    #[test]
    fn curve_carries_fallback_stats_for_plain_models() {
        let split = tiny_split();
        let mut model = OracleModel {
            n_items: split.n_items(),
            skill: 0.0,
            epochs_seen: 0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = TrainConfig {
            max_epochs: 2,
            patience: 0,
            eval_every: 1,
            log_level: Level::Warn,
            start_epoch: 0,
            guard: GuardPolicy::default(),
        };
        let result = train_model(&mut model, &split, &cfg, &mut rng);
        for p in &result.curve {
            // OracleModel has no epoch_stats override: the harness must
            // fall back to the scalar loss with no breakdown.
            assert_eq!(p.stats, EpochStats::from_loss(p.loss));
        }
    }
}
