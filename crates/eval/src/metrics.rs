//! Top-N ranking metrics over the full item catalogue.

use crate::recommender::SeqRecommender;
use pmm_data::split::LeaveOneOut;

/// The cut-offs reported in the paper's tables.
pub const TOP_KS: [usize; 3] = [10, 20, 50];

/// HR@k and NDCG@k at the three paper cut-offs, in percent.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetricSet {
    /// Hit ratio at `TOP_KS[i]`, percent.
    pub hr: [f32; 3],
    /// NDCG at `TOP_KS[i]`, percent.
    pub ndcg: [f32; 3],
    /// Number of evaluation cases aggregated.
    pub cases: usize,
}

impl MetricSet {
    /// HR@10 (the headline metric of Tables IV–VIII).
    pub fn hr10(&self) -> f32 {
        self.hr[0]
    }

    /// NDCG@10.
    pub fn ndcg10(&self) -> f32 {
        self.ndcg[0]
    }
}

impl std::fmt::Display for MetricSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HR@10 {:5.2} HR@20 {:5.2} HR@50 {:5.2} | NG@10 {:5.2} NG@20 {:5.2} NG@50 {:5.2}",
            self.hr[0], self.hr[1], self.hr[2], self.ndcg[0], self.ndcg[1], self.ndcg[2]
        )
    }
}

/// 0-based rank of the target among `scores` (full ranking).
///
/// Ties are counted pessimistically on the half: items scoring strictly
/// higher than the target rank above it; items tying with it contribute
/// half a position each (the expected rank under random tie-breaking).
pub fn rank_of_target(scores: &[f32], target: usize) -> f32 {
    let t = scores[target];
    let mut above = 0usize;
    let mut ties = 0usize;
    for (i, &s) in scores.iter().enumerate() {
        if i == target {
            continue;
        }
        if s > t {
            above += 1;
        } else if s == t {
            ties += 1;
        }
    }
    above as f32 + ties as f32 / 2.0
}

/// Aggregates HR/NDCG from 0-based target ranks.
pub fn evaluate_ranks(ranks: &[f32]) -> MetricSet {
    let mut m = MetricSet {
        cases: ranks.len(),
        ..Default::default()
    };
    if ranks.is_empty() {
        return m;
    }
    for &r in ranks {
        for (ki, &k) in TOP_KS.iter().enumerate() {
            if (r as usize) < k {
                m.hr[ki] += 1.0;
                m.ndcg[ki] += 1.0 / (r + 2.0).log2();
            }
        }
    }
    let n = ranks.len() as f32;
    for ki in 0..TOP_KS.len() {
        m.hr[ki] = 100.0 * m.hr[ki] / n;
        m.ndcg[ki] = 100.0 * m.ndcg[ki] / n;
    }
    m
}

/// Minimum score-row entries one ranking worker should process before
/// it is worth spawning threads for the rank loop.
const PAR_MIN_SCORES: usize = 1 << 17;

/// Ranks each case of a scored chunk, splitting cases over workers when
/// the chunk is big enough. Each case's rank depends only on its own
/// score row, so the parallel result is identical to sequential.
fn ranks_for_chunk(chunk: &[LeaveOneOut], scores: &[Vec<f32>]) -> Vec<f32> {
    debug_assert_eq!(scores.len(), chunk.len());
    let mut ranks = vec![0.0f32; chunk.len()];
    let n_items = scores.first().map_or(0, Vec::len);
    let min_cases = (PAR_MIN_SCORES / n_items.max(1)).max(1);
    pmm_par::for_each_row_chunk(&mut ranks, 1, min_cases, |off, block| {
        for (bi, rv) in block.iter_mut().enumerate() {
            let idx = off + bi;
            *rv = rank_of_target(&scores[idx], chunk[idx].target);
        }
    });
    ranks
}

/// Scores every case with the model and aggregates metrics.
pub fn evaluate_cases(model: &dyn SeqRecommender, cases: &[LeaveOneOut]) -> MetricSet {
    let mut ranks = Vec::with_capacity(cases.len());
    // Score in chunks so models can amortise catalogue encoding.
    const CHUNK: usize = 64;
    for chunk in cases.chunks(CHUNK) {
        let scores = model.score_cases(chunk);
        pmm_obs::counter::EVAL_CASES.add(chunk.len() as u64);
        ranks.extend(ranks_for_chunk(chunk, &scores));
    }
    evaluate_ranks(&ranks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_counts_strictly_greater() {
        assert_eq!(rank_of_target(&[0.1, 0.9, 0.5], 2), 1.0);
        assert_eq!(rank_of_target(&[0.1, 0.9, 0.5], 1), 0.0);
        assert_eq!(rank_of_target(&[0.1, 0.9, 0.5], 0), 2.0);
    }

    #[test]
    fn ties_contribute_half() {
        assert_eq!(rank_of_target(&[0.5, 0.5, 0.5], 1), 1.0);
        assert_eq!(rank_of_target(&[0.5, 0.5], 0), 0.5);
    }

    #[test]
    fn perfect_ranking_gives_100() {
        let m = evaluate_ranks(&[0.0, 0.0, 0.0]);
        assert_eq!(m.hr, [100.0; 3]);
        assert_eq!(m.ndcg, [100.0; 3]);
    }

    #[test]
    fn rank_outside_all_cutoffs_gives_zero() {
        let m = evaluate_ranks(&[60.0]);
        assert_eq!(m.hr, [0.0; 3]);
        assert_eq!(m.ndcg, [0.0; 3]);
    }

    #[test]
    fn ndcg_discounts_by_position() {
        let first = evaluate_ranks(&[0.0]);
        let ninth = evaluate_ranks(&[8.0]);
        assert_eq!(first.hr10(), ninth.hr10());
        assert!(first.ndcg10() > ninth.ndcg10());
        // NDCG@10 for rank 8 = 1/log2(10) ~ 0.301.
        assert!((ninth.ndcg10() - 100.0 / (10.0f32).log2()).abs() < 0.01);
    }

    #[test]
    fn hr_is_monotone_in_k() {
        let m = evaluate_ranks(&[5.0, 15.0, 45.0, 70.0]);
        assert!(m.hr[0] <= m.hr[1] && m.hr[1] <= m.hr[2]);
        assert_eq!(m.hr, [25.0, 50.0, 75.0]);
    }

    #[test]
    fn empty_case_set_is_all_zero() {
        let m = evaluate_ranks(&[]);
        assert_eq!(m.cases, 0);
        assert_eq!(m.hr, [0.0; 3]);
    }
}

/// Mean reciprocal rank over 0-based ranks (in percent, like the
/// HR/NDCG fields).
pub fn mrr(ranks: &[f32]) -> f32 {
    if ranks.is_empty() {
        return 0.0;
    }
    100.0 * ranks.iter().map(|&r| 1.0 / (r + 1.0)).sum::<f32>() / ranks.len() as f32
}

/// Per-case 0-based target ranks for a model over cases — the raw
/// material for [`crate::significance::paired_bootstrap`].
pub fn ranks_for_cases(model: &dyn SeqRecommender, cases: &[LeaveOneOut]) -> Vec<f32> {
    let mut ranks = Vec::with_capacity(cases.len());
    const CHUNK: usize = 64;
    for chunk in cases.chunks(CHUNK) {
        let scores = model.score_cases(chunk);
        ranks.extend(ranks_for_chunk(chunk, &scores));
    }
    ranks
}

#[cfg(test)]
mod mrr_tests {
    use super::*;

    #[test]
    fn mrr_of_perfect_ranking_is_100() {
        assert_eq!(mrr(&[0.0, 0.0]), 100.0);
    }

    #[test]
    fn mrr_decays_with_rank() {
        assert!((mrr(&[1.0]) - 50.0).abs() < 1e-4);
        assert!(mrr(&[4.0]) < mrr(&[1.0]));
        assert_eq!(mrr(&[]), 0.0);
    }
}
