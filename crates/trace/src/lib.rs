//! # pmm-trace
//!
//! Request-level observability for the serving stack, layered on top
//! of `pmm-obs` (which supplies counters, spans, and the JSONL sink).
//! Std-only like every other crate. Four pieces:
//!
//! - [`hist`]: lock-free fixed-bucket log-scale latency histograms —
//!   64 power-of-√2 buckets of relaxed atomics, so p50/p90/p95/p99 are
//!   exact to within one bucket's width (≤ √2 relative error) with no
//!   allocation or locking on the record path. Stage histograms live
//!   in a global registry next to the obs counters.
//! - [`event`]: a per-request [`TraceId`] minted at enqueue and a
//!   [`Tracer`] that threads it through every serving stage — queue
//!   wait, encode, user-encode, rank, breaker decisions, tier
//!   transitions — emitting structured [`TraceEvent`]s into a bounded
//!   [`ring`] buffer that flushes to the obs JSONL sink.
//! - [`metrics`]: [`MetricsSnapshot::capture`] freezes every counter
//!   and histogram; `delta_since` turns two snapshots into a window;
//!   `to_prometheus` renders a window (or a snapshot) as
//!   Prometheus-style text exposition.
//! - [`slo`]: evaluates a metrics window against an [`SloPolicy`]
//!   (deadline-miss rate, shed rate, breaker-open time, degradation
//!   floor fraction), logging burn-rate breach events; callers can
//!   exit non-zero on breach for CI gating.
//!
//! Collection is gated on the same `pmm_obs::enabled()` switch as the
//! rest of the telemetry, so a disabled stack pays one relaxed atomic
//! load per stage.

pub mod event;
pub mod hist;
pub mod metrics;
pub mod slo;

pub use event::{ring, Stage, StageClock, TraceEvent, TraceId, Tracer};
pub use hist::{HistSnapshot, Histogram};
pub use metrics::MetricsSnapshot;
pub use slo::{SloCheck, SloPolicy, SloReport};

/// Reset every trace-global (stage histograms and the event ring).
/// Counters are reset separately via `pmm_obs::reset`. Intended for
/// tests and for drivers that scope collection to one run.
pub fn reset() {
    hist::reset_all();
    ring::clear();
}

/// The obs enable switch and the event ring are process-global; unit
/// tests that toggle or inspect them serialize on this one lock so
/// parallel test threads cannot interleave a disabled window into
/// another test's observations.
#[cfg(test)]
pub(crate) fn test_global_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
