//! Per-request trace ids, stage guards, and the bounded event ring.
//!
//! A [`TraceId`] is minted at enqueue from one global atomic and rides
//! the job through every worker; the submitting side and the worker
//! side each hold a [`Tracer`] for it (the worker resumes at the next
//! sequence number), so the events of one request reconstruct into a
//! single causal chain ordered by `seq`.
//!
//! Stages that have a latency distribution ([`Stage::histogram`])
//! record into their [`crate::hist`] histogram *and* open the matching
//! `pmm_obs::span` — one [`Tracer::begin`]/[`Tracer::finish`] pair per
//! stage keeps the histogram, the event, and the span in lockstep,
//! which is also what the `stage-histogram` audit rule enforces in
//! `crates/serve`.
//!
//! Events land in a bounded ring (drop-oldest, with a dropped counter)
//! and are flushed to the obs JSONL sink as `"ev":"trace"` lines by
//! [`ring::flush_to_sink`].

use crate::hist::{self, Histogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A process-unique request trace id, minted at enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

fn next_trace_id() -> TraceId {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    TraceId(NEXT.fetch_add(1, Ordering::Relaxed))
}

/// Nanoseconds since the process trace epoch (the first call). A
/// monotonic per-process timebase keeps event ordering meaningful
/// without touching `SystemTime`.
pub fn now_ns() -> u64 {
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// The serving stages a trace event can attribute time or decisions
/// to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Admission: the request was accepted into (or shed at) the queue.
    Enqueue,
    /// Time spent queued before a worker picked the job up.
    Queue,
    /// Catalogue encode for the attempted rung (all its components).
    Encode,
    /// User-prefix encode against the stage-1 catalogue.
    UserEncode,
    /// Catalogue scoring + top-k.
    Rank,
    /// The whole worker-side request (handler entry to reply).
    Request,
    /// A circuit-breaker admission decision.
    Breaker,
    /// A degradation-ladder rung transition.
    Tier,
    /// The reply left the worker (served or deadline-missed).
    Respond,
    /// A retry decision after a transient worker failure (re-enqueued
    /// onto a healthy worker, or budget-denied to the floor).
    Retry,
    /// A supervisor action on a worker slot: respawn, wedge
    /// declaration, or restart-budget give-up.
    Restart,
    /// A snapshot hot-swap: epoch flip through old-epoch drain.
    Swap,
    /// Durable item ingestion: a WAL append (or replay/fold decision).
    Ingest,
    /// One shard of the scatter-gather rank: its local score + top-k,
    /// or a quarantine/rebuild decision for the shard slot.
    Shard,
}

impl Stage {
    /// Stable label used in events and summaries.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Enqueue => "enqueue",
            Stage::Queue => "queue_wait",
            Stage::Encode => "encode",
            Stage::UserEncode => "user_encode",
            Stage::Rank => "rank",
            Stage::Request => "request",
            Stage::Breaker => "breaker",
            Stage::Tier => "tier",
            Stage::Respond => "respond",
            Stage::Retry => "retry",
            Stage::Restart => "restart",
            Stage::Swap => "swap",
            Stage::Ingest => "ingest",
            Stage::Shard => "shard",
        }
    }

    /// The `pmm_obs::span` name a [`Tracer::begin`] guard opens, so
    /// the hierarchical wall-clock profile keeps its existing paths.
    fn span_name(self) -> Option<&'static str> {
        match self {
            Stage::Request => Some("serve_request"),
            Stage::Encode => Some("serve_encode"),
            Stage::UserEncode => Some("serve_user"),
            Stage::Rank => Some("serve_rank"),
            _ => None,
        }
    }

    /// The latency histogram this stage records into. `Request` maps
    /// to none on purpose: end-to-end latency includes queue wait, so
    /// the serving loop records [`crate::hist::H_TOTAL`] from the
    /// enqueue timestamp instead of the handler-scoped clock.
    pub fn histogram(self) -> Option<&'static Histogram> {
        match self {
            Stage::Queue => Some(&hist::H_QUEUE_WAIT),
            Stage::Encode => Some(&hist::H_ENCODE),
            Stage::UserEncode => Some(&hist::H_USER_ENCODE),
            Stage::Rank => Some(&hist::H_RANK),
            Stage::Swap => Some(&hist::H_SWAP_DRAIN),
            Stage::Ingest => Some(&hist::H_INGEST),
            Stage::Shard => Some(&hist::H_SHARD_RANK),
            _ => None,
        }
    }
}

/// One structured trace event: everything needed to reconstruct a
/// request's causal chain and attribute its latency.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub trace: TraceId,
    /// Position in the request's chain (0 = enqueue).
    pub seq: u32,
    /// [`Stage::label`] of the emitting stage.
    pub stage: &'static str,
    /// Stage start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Stage duration (0 for instantaneous decision events).
    pub dur_ns: u64,
    /// `"ok"`, `"err"`, `"accepted"`, `"shed"`, `"deny"`,
    /// `"attempt"`, or `"deadline_miss"`.
    pub outcome: &'static str,
    /// Free-form context: tier label, component, queue depth, …
    pub detail: String,
}

/// An in-flight timed stage started by [`Tracer::begin`]. Holds the
/// matching obs span guard so histogram, event, and span close
/// together in [`Tracer::finish`].
pub struct StageClock {
    stage: Stage,
    start: Instant,
    start_ns: u64,
    _span: Option<pmm_obs::span::Span>,
}

/// Emits the events of one request. The submitting thread starts the
/// chain; a worker resumes it at the next sequence number.
pub struct Tracer {
    id: TraceId,
    seq: u32,
}

impl Tracer {
    /// Start a fresh chain with a newly minted [`TraceId`].
    pub fn start() -> Tracer {
        Tracer { id: next_trace_id(), seq: 0 }
    }

    /// Resume an existing chain (e.g. worker-side) at `seq`.
    pub fn resume(id: TraceId, seq: u32) -> Tracer {
        Tracer { id, seq }
    }

    pub fn id(&self) -> TraceId {
        self.id
    }

    /// The sequence number the next event will get.
    pub fn seq(&self) -> u32 {
        self.seq
    }

    /// Open a timed stage: starts the clock and the stage's obs span.
    pub fn begin(&mut self, stage: Stage) -> StageClock {
        StageClock {
            stage,
            start: Instant::now(),
            start_ns: now_ns(),
            _span: stage.span_name().map(pmm_obs::span),
        }
    }

    /// Close a timed stage: records its histogram (when the stage has
    /// one), emits the event, and drops the span guard.
    pub fn finish(&mut self, clock: StageClock, outcome: &'static str, detail: &str) {
        let dur = clock.start.elapsed();
        if let Some(h) = clock.stage.histogram() {
            h.observe(dur);
        }
        self.emit(clock.stage, clock.start_ns, dur.as_nanos() as u64, outcome, detail);
    }

    /// Record an externally measured duration (e.g. queue wait, whose
    /// start lives on the submitting thread): histogram + event.
    pub fn observe(&mut self, stage: Stage, dur: Duration, outcome: &'static str, detail: &str) {
        if let Some(h) = stage.histogram() {
            h.observe(dur);
        }
        let dur_ns = dur.as_nanos() as u64;
        self.emit(stage, now_ns().saturating_sub(dur_ns), dur_ns, outcome, detail);
    }

    /// Record one of several concurrent measurements anchored at an
    /// enclosing [`StageClock`] (e.g. per-shard scatter timings inside
    /// the rank stage): the event takes the anchor's start and the
    /// measured duration, so sibling events that overlapped in time
    /// keep non-decreasing start times in the causal chain.
    pub fn observe_at(
        &mut self,
        stage: Stage,
        anchor: &StageClock,
        dur: Duration,
        outcome: &'static str,
        detail: &str,
    ) {
        if let Some(h) = stage.histogram() {
            h.observe(dur);
        }
        self.emit(stage, anchor.start_ns, dur.as_nanos() as u64, outcome, detail);
    }

    /// Emit a zero-duration decision event (enqueue outcome, breaker
    /// denial, tier transition, respond).
    pub fn instant(&mut self, stage: Stage, outcome: &'static str, detail: &str) {
        self.emit(stage, now_ns(), 0, outcome, detail);
    }

    fn emit(&mut self, stage: Stage, start_ns: u64, dur_ns: u64, outcome: &'static str, detail: &str) {
        if !pmm_obs::enabled() {
            return;
        }
        let event = TraceEvent {
            trace: self.id,
            seq: self.seq,
            stage: stage.label(),
            start_ns,
            dur_ns,
            outcome,
            detail: detail.to_string(),
        };
        self.seq += 1;
        ring::push(event);
    }
}

/// The bounded in-memory event buffer.
pub mod ring {
    use super::TraceEvent;
    use std::collections::VecDeque;
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

    /// Ring capacity; pushes beyond it drop the oldest event and bump
    /// `trace_dropped`.
    pub const CAPACITY: usize = 16_384;

    fn buf() -> MutexGuard<'static, VecDeque<TraceEvent>> {
        static RING: OnceLock<Mutex<VecDeque<TraceEvent>>> = OnceLock::new();
        RING.get_or_init(|| Mutex::new(VecDeque::new()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Append one event, dropping the oldest past [`CAPACITY`].
    pub fn push(event: TraceEvent) {
        let mut b = buf();
        if b.len() >= CAPACITY {
            b.pop_front();
            pmm_obs::counter::TRACE_DROPPED.add(1);
        }
        b.push_back(event);
        pmm_obs::counter::TRACE_EVENTS.add(1);
    }

    /// Number of buffered events.
    pub fn len() -> usize {
        buf().len()
    }

    /// Copy of the buffered events, oldest first.
    pub fn snapshot() -> Vec<TraceEvent> {
        buf().iter().cloned().collect()
    }

    /// Remove and return the buffered events, oldest first.
    pub fn drain() -> Vec<TraceEvent> {
        buf().drain(..).collect()
    }

    /// Discard the buffered events.
    pub fn clear() {
        buf().clear();
    }

    /// Drain the ring into the obs JSONL sink, one `"ev":"trace"` line
    /// per event. A no-op (events stay buffered) when no sink is open.
    pub fn flush_to_sink() {
        if !pmm_obs::sink::is_open() {
            return;
        }
        for e in drain() {
            pmm_obs::sink::emit_obj(
                pmm_obs::json::JsonObj::new()
                    .str("ev", "trace")
                    .u64("trace", e.trace.0)
                    .u64("seq", u64::from(e.seq))
                    .str("stage", e.stage)
                    .u64("start_ns", e.start_ns)
                    .u64("dur_ns", e.dur_ns)
                    .str("outcome", e.outcome)
                    .str("detail", &e.detail),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::test_global_lock as ring_lock;

    #[test]
    fn trace_ids_are_unique_and_display_stably() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        assert_eq!(format!("{a}"), format!("t{}", a.0));
    }

    #[test]
    fn tracer_orders_a_causal_chain() {
        let _g = ring_lock();
        pmm_obs::set_enabled(true);
        ring::clear();
        let mut submit = Tracer::start();
        submit.instant(Stage::Enqueue, "accepted", "depth=1");
        let mut worker = Tracer::resume(submit.id(), submit.seq());
        let request = worker.begin(Stage::Request);
        worker.observe(Stage::Queue, Duration::from_micros(5), "ok", "");
        worker.instant(Stage::Tier, "attempt", "full");
        let clock = worker.begin(Stage::Encode);
        worker.finish(clock, "ok", "full");
        worker.instant(Stage::Respond, "ok", "full");
        worker.finish(request, "ok", "full");

        let events: Vec<TraceEvent> =
            ring::drain().into_iter().filter(|e| e.trace == submit.id()).collect();
        let seqs: Vec<u32> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5], "contiguous chain");
        let stages: Vec<&str> = events.iter().map(|e| e.stage).collect();
        assert_eq!(stages, vec!["enqueue", "queue_wait", "tier", "encode", "respond", "request"]);
        // The queue-wait event backdates its start by its duration.
        assert_eq!(events[1].dur_ns, 5_000);
        // Timed stages record into their histograms.
        assert!(crate::hist::H_QUEUE_WAIT.snapshot().count >= 1);
        assert!(crate::hist::H_ENCODE.snapshot().count >= 1);
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let _g = ring_lock();
        pmm_obs::set_enabled(true);
        ring::clear();
        let dropped_before = pmm_obs::counter::TRACE_DROPPED.get();
        for i in 0..(ring::CAPACITY + 10) as u64 {
            ring::push(TraceEvent {
                trace: TraceId(i),
                seq: 0,
                stage: "enqueue",
                start_ns: i,
                dur_ns: 0,
                outcome: "ok",
                detail: String::new(),
            });
        }
        assert_eq!(ring::len(), ring::CAPACITY);
        let snap = ring::snapshot();
        assert_eq!(snap.first().map(|e| e.trace), Some(TraceId(10)), "oldest 10 dropped");
        assert_eq!(pmm_obs::counter::TRACE_DROPPED.delta_since(dropped_before), 10);
        ring::clear();
        assert_eq!(ring::len(), 0);
    }

    #[test]
    fn disabled_tracer_emits_nothing() {
        let _g = ring_lock();
        pmm_obs::set_enabled(false);
        ring::clear();
        let mut t = Tracer::start();
        t.instant(Stage::Enqueue, "accepted", "");
        let c = t.begin(Stage::Rank);
        t.finish(c, "ok", "");
        assert_eq!(ring::len(), 0);
        assert_eq!(t.seq(), 0, "disabled emission does not advance the chain");
        pmm_obs::set_enabled(true);
    }
}
