//! Metrics snapshots, windows, and Prometheus-style text exposition.
//!
//! [`MetricsSnapshot::capture`] freezes every obs counter and every
//! registered histogram; [`MetricsSnapshot::delta_since`] subtracts a
//! baseline to isolate one run's window (counters and histograms are
//! monotonic, so a window is just a saturating difference by name).
//! [`MetricsSnapshot::to_prometheus`] renders the snapshot in the
//! text exposition format scrapers expect: counters as `pmm_*`
//! counters, the peak gauges as gauges, and `*_ns` histograms as
//! cumulative-bucket `*_seconds` histograms with `le` edges from the
//! shared bound table.

use crate::hist::{self, HistSnapshot, BOUNDS, BUCKETS};

/// Per-worker restart counts, recorded by the serving supervisor so
/// crash-looping is attributable to a slot instead of hiding inside
/// the aggregate `serve_worker_restarts` total. Exposed as labeled
/// `pmm_serve_worker_restarts_by_worker{worker="N"}` counter lines.
pub mod workers {
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

    fn store() -> MutexGuard<'static, Vec<u64>> {
        static STORE: OnceLock<Mutex<Vec<u64>>> = OnceLock::new();
        STORE
            .get_or_init(|| Mutex::new(Vec::new()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Count one restart of worker slot `worker` (no-op while
    /// collection is disabled, like every other obs counter).
    pub fn record_restart(worker: usize) {
        if !pmm_obs::enabled() {
            return;
        }
        let mut s = store();
        if s.len() <= worker {
            s.resize(worker + 1, 0);
        }
        if let Some(slot) = s.get_mut(worker) {
            *slot += 1;
        }
    }

    /// Restart counts indexed by worker slot.
    pub fn restarts() -> Vec<u64> {
        store().clone()
    }

    /// Zero the per-worker counts (test/windowing hook).
    pub fn reset() {
        store().clear();
    }
}

/// Counter names that are high-water marks, not monotonic totals:
/// exposed as Prometheus gauges and carried through deltas unchanged
/// (the window peak is the end-of-window peak).
const GAUGES: &[&str] = &["tape_peak", "serve_queue_peak", "wal_tail_peak_bytes"];

/// A frozen view of every counter and registered histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs in the stable obs order.
    pub counters: Vec<(&'static str, u64)>,
    /// One snapshot per registered histogram, registration order.
    pub hists: Vec<HistSnapshot>,
    /// Restart counts per worker slot (see [`workers`]).
    pub worker_restarts: Vec<u64>,
}

impl MetricsSnapshot {
    /// Freeze the current counter and histogram state.
    pub fn capture() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: pmm_obs::counter::counters_snapshot(),
            hists: hist::snapshot_all(),
            worker_restarts: workers::restarts(),
        }
    }

    /// The window `self - base`, matched by name and saturating, so a
    /// counter reset mid-run degrades to the end value instead of
    /// wrapping. Gauges (peaks) keep their end-of-window value.
    pub fn delta_since(&self, base: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|&(name, value)| {
                if GAUGES.contains(&name) {
                    (name, value)
                } else {
                    let before = base
                        .counters
                        .iter()
                        .find(|(n, _)| *n == name)
                        .map_or(0, |&(_, v)| v);
                    (name, value.saturating_sub(before))
                }
            })
            .collect();
        let hists = self
            .hists
            .iter()
            .map(|h| match base.hists.iter().find(|b| b.name == h.name) {
                Some(b) => h.delta_since(b),
                None => h.clone(),
            })
            .collect();
        let worker_restarts = self
            .worker_restarts
            .iter()
            .enumerate()
            .map(|(i, &v)| v.saturating_sub(base.worker_restarts.get(i).copied().unwrap_or(0)))
            .collect();
        MetricsSnapshot { counters, hists, worker_restarts }
    }

    /// A counter's value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| *n == name).map_or(0, |&(_, v)| v)
    }

    /// A histogram snapshot by name.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|h| h.name == name)
    }

    /// Render as Prometheus text exposition. Nanosecond histograms are
    /// exported in seconds (the Prometheus convention) with cumulative
    /// `_bucket{le=...}` counts, `_sum`, and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for &(name, value) in &self.counters {
            let kind = if GAUGES.contains(&name) { "gauge" } else { "counter" };
            out.push_str(&format!("# TYPE pmm_{name} {kind}\npmm_{name} {value}\n"));
        }
        if !self.worker_restarts.is_empty() {
            out.push_str("# TYPE pmm_serve_worker_restarts_by_worker counter\n");
            for (worker, &n) in self.worker_restarts.iter().enumerate() {
                out.push_str(&format!(
                    "pmm_serve_worker_restarts_by_worker{{worker=\"{worker}\"}} {n}\n"
                ));
            }
        }
        for h in &self.hists {
            let base = h.name.strip_suffix("_ns").unwrap_or(h.name);
            out.push_str(&format!("# TYPE pmm_{base}_seconds histogram\n"));
            let mut cum = 0u64;
            for (i, &n) in h.buckets.iter().enumerate() {
                cum += n;
                // Upper bucket edges; the last bucket is unbounded.
                let le = if i + 1 < BUCKETS {
                    format!("{:e}", BOUNDS[i + 1] as f64 / 1e9)
                } else {
                    "+Inf".to_string()
                };
                // Elide interior empty buckets to keep files readable;
                // cumulative counts stay correct because `le` edges are
                // explicit and +Inf is always present.
                if n > 0 || i + 1 == BUCKETS {
                    out.push_str(&format!(
                        "pmm_{base}_seconds_bucket{{le=\"{le}\"}} {cum}\n"
                    ));
                }
            }
            out.push_str(&format!(
                "pmm_{base}_seconds_sum {:e}\npmm_{base}_seconds_count {}\n",
                h.sum_ns as f64 / 1e9,
                h.count
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::bucket_of;

    fn synthetic() -> MetricsSnapshot {
        let mut h = HistSnapshot::empty("stage_test_ns");
        // 3 observations at ~1 µs, 1 at ~1 ms.
        h.buckets[bucket_of(1_000)] = 3;
        h.buckets[bucket_of(1_000_000)] = 1;
        h.count = 4;
        h.sum_ns = 3 * 1_000 + 1_000_000;
        MetricsSnapshot {
            counters: vec![("serve_requests", 10), ("serve_shed", 2), ("serve_queue_peak", 7)],
            hists: vec![h],
            worker_restarts: vec![1, 0, 3],
        }
    }

    #[test]
    fn counter_and_hist_lookup() {
        let s = synthetic();
        assert_eq!(s.counter("serve_requests"), 10);
        assert_eq!(s.counter("missing"), 0);
        assert_eq!(s.hist("stage_test_ns").map(|h| h.count), Some(4));
        assert!(s.hist("missing").is_none());
    }

    #[test]
    fn delta_subtracts_counters_but_keeps_gauges() {
        let base = MetricsSnapshot {
            counters: vec![("serve_requests", 4), ("serve_shed", 0), ("serve_queue_peak", 7)],
            hists: vec![HistSnapshot::empty("stage_test_ns")],
            worker_restarts: vec![1],
        };
        let win = synthetic().delta_since(&base);
        assert_eq!(win.counter("serve_requests"), 6);
        assert_eq!(win.counter("serve_shed"), 2);
        assert_eq!(win.counter("serve_queue_peak"), 7, "peaks pass through");
        assert_eq!(win.hist("stage_test_ns").map(|h| h.count), Some(4));
        assert_eq!(win.worker_restarts, vec![0, 0, 3], "per-slot saturating window");
    }

    #[test]
    fn prometheus_exposition_has_cumulative_buckets() {
        let text = synthetic().to_prometheus();
        assert!(text.contains("# TYPE pmm_serve_requests counter\npmm_serve_requests 10\n"));
        assert!(text.contains("# TYPE pmm_serve_queue_peak gauge\n"));
        assert!(text.contains("# TYPE pmm_stage_test_seconds histogram\n"));
        assert!(text.contains("pmm_stage_test_seconds_count 4\n"));
        assert!(text.contains("le=\"+Inf\"} 4\n"), "+Inf bucket carries the total:\n{text}");
        // The two populated buckets appear with cumulative counts 3
        // then 4.
        let bucket_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("pmm_stage_test_seconds_bucket"))
            .collect();
        assert!(bucket_lines.iter().any(|l| l.ends_with(" 3")));
        assert!(bucket_lines.last().is_some_and(|l| l.ends_with(" 4")));
        // Buckets are in seconds: 1 µs lands at a le edge ~1.4e-6.
        assert!(text.contains("e-6\"}") || text.contains("e-06\"}"), "{text}");
    }

    #[test]
    fn prometheus_exposition_labels_worker_restarts() {
        let text = synthetic().to_prometheus();
        assert!(text.contains("# TYPE pmm_serve_worker_restarts_by_worker counter\n"));
        assert!(text.contains("pmm_serve_worker_restarts_by_worker{worker=\"0\"} 1\n"));
        assert!(text.contains("pmm_serve_worker_restarts_by_worker{worker=\"2\"} 3\n"));
        // No slots recorded: the labeled family is omitted entirely.
        let empty = MetricsSnapshot {
            counters: Vec::new(),
            hists: Vec::new(),
            worker_restarts: Vec::new(),
        };
        assert!(!empty.to_prometheus().contains("by_worker"));
    }

    #[test]
    fn worker_restart_registry_records_and_resets() {
        let _g = crate::test_global_lock();
        pmm_obs::set_enabled(true);
        workers::reset();
        workers::record_restart(2);
        workers::record_restart(0);
        workers::record_restart(2);
        assert_eq!(workers::restarts(), vec![1, 0, 2]);
        workers::reset();
        assert!(workers::restarts().is_empty());
    }
}
