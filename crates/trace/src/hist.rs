//! Lock-free log-scale latency histograms.
//!
//! A [`Histogram`] is 64 buckets of relaxed `AtomicU64`s whose lower
//! bounds grow by a factor of √2 from 1 ns; the top (unbounded) bucket
//! opens at ~1.9 s, which comfortably covers every serving deadline in
//! the stack. Recording is one binary search over a `const` bound table
//! plus three relaxed `fetch_add`s — no locks, no allocation — so the
//! record path is safe inside serving workers. Quantiles read a
//! [`HistSnapshot`] and are exact to within one bucket (≤ √2 relative
//! error), which is the usual contract for log-bucketed latency
//! telemetry.
//!
//! Stage histograms are `static`s registered in a global registry
//! (mirroring `pmm_obs::counter`), so exporters can enumerate them
//! without knowing the serving crate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Number of buckets per histogram.
pub const BUCKETS: usize = 64;

/// Lower bound of each bucket in nanoseconds, strictly increasing.
/// Bucket 0 holds exactly 0 ns; bucket `i` holds
/// `[BOUNDS[i], BOUNDS[i+1])`; the last bucket is unbounded above.
/// Growth is ×√2 via the fixed-point multiplier `92_682 / 2^16`
/// (≈ 1.41422), with a `+1` floor so small bounds still advance.
pub static BOUNDS: [u64; BUCKETS] = bounds();

const fn bounds() -> [u64; BUCKETS] {
    let mut b = [0u64; BUCKETS];
    b[1] = 1;
    let mut i = 2;
    while i < BUCKETS {
        let grown = (b[i - 1] * 92_682) >> 16;
        b[i] = if grown > b[i - 1] { grown } else { b[i - 1] + 1 };
        i += 1;
    }
    b
}

/// The bucket index holding `ns`.
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    // partition_point returns the count of bounds ≤ ns; BOUNDS[0] = 0
    // is always ≤ ns, so the result is ≥ 1 and the -1 cannot wrap.
    BOUNDS.partition_point(|&lo| lo <= ns) - 1
}

/// A named lock-free latency histogram.
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Histogram {
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record one observation; no-op while collection is disabled.
    #[inline]
    pub fn observe_ns(&self, ns: u64) {
        if !pmm_obs::enabled() {
            return;
        }
        let idx = bucket_of(ns);
        // bucket_of is bounded by BUCKETS - 1 by construction.
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record one observation from a `Duration`.
    #[inline]
    pub fn observe(&self, d: Duration) {
        self.observe_ns(d.as_nanos() as u64);
    }

    /// A point-in-time copy of the histogram's state. Relaxed loads:
    /// concurrent recorders may straddle the snapshot by one event,
    /// which is within the histogram's error contract anyway.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistSnapshot {
            name: self.name,
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
    }
}

/// A frozen histogram: the unit quantiles, deltas, and exporters work
/// on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    pub name: &'static str,
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    pub sum_ns: u64,
}

impl HistSnapshot {
    /// An empty snapshot (useful as a delta base).
    pub fn empty(name: &'static str) -> HistSnapshot {
        HistSnapshot { name, buckets: [0; BUCKETS], count: 0, sum_ns: 0 }
    }

    /// The quantile `q` in `[0, 1]`, reported as the upper edge of the
    /// bucket holding the rank-`⌈q·count⌉` observation (bucket 0 holds
    /// exactly 0 ns and reports 0). Returns 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return match i {
                    0 => 0,
                    _ => BOUNDS.get(i + 1).copied().unwrap_or(BOUNDS[BUCKETS - 1]),
                };
            }
        }
        BOUNDS[BUCKETS - 1]
    }

    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// The window `self - base`, saturating per bucket so a registry
    /// reset between snapshots degrades to `self` instead of wrapping.
    pub fn delta_since(&self, base: &HistSnapshot) -> HistSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (i, slot) in buckets.iter_mut().enumerate() {
            *slot = self.buckets[i].saturating_sub(base.buckets[i]);
        }
        HistSnapshot {
            name: self.name,
            buckets,
            count: self.count.saturating_sub(base.count),
            sum_ns: self.sum_ns.saturating_sub(base.sum_ns),
        }
    }
}

// --- serving-stage histograms -----------------------------------------

/// Queue wait: submission to worker pickup.
pub static H_QUEUE_WAIT: Histogram = Histogram::new("stage_queue_wait_ns");
/// Catalogue encode (all modality components of the attempted rung).
pub static H_ENCODE: Histogram = Histogram::new("stage_encode_ns");
/// User-prefix encode against the stage-1 catalogue.
pub static H_USER_ENCODE: Histogram = Histogram::new("stage_user_encode_ns");
/// Catalogue scoring + top-k.
pub static H_RANK: Histogram = Histogram::new("stage_rank_ns");
/// End-to-end request latency, queue wait included, regardless of
/// outcome (served or deadline-missed; shed requests never start).
pub static H_TOTAL: Histogram = Histogram::new("request_total_ns");
/// Snapshot hot-swap drain: epoch flip until every live worker
/// adopted the new snapshot.
pub static H_SWAP_DRAIN: Histogram = Histogram::new("swap_drain_ns");
/// Durable item ingestion: WAL append (frame, CRC, fsync) per item.
pub static H_INGEST: Histogram = Histogram::new("stage_ingest_ns");
/// One shard's slice of the scatter-gather rank (score + local top-k).
pub static H_SHARD_RANK: Histogram = Histogram::new("stage_shard_rank_ns");

fn registry() -> &'static Mutex<Vec<&'static Histogram>> {
    static REGISTRY: OnceLock<Mutex<Vec<&'static Histogram>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(vec![
            &H_QUEUE_WAIT,
            &H_ENCODE,
            &H_USER_ENCODE,
            &H_RANK,
            &H_TOTAL,
            &H_SWAP_DRAIN,
            &H_INGEST,
            &H_SHARD_RANK,
        ])
    })
}

/// Register an additional static histogram so exporters enumerate it.
/// The stage histograms above are pre-registered; re-registering a
/// name is a no-op.
pub fn register(h: &'static Histogram) {
    let mut reg = registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if !reg.iter().any(|r| r.name == h.name) {
        reg.push(h);
    }
}

/// Snapshot every registered histogram, in registration order.
pub fn snapshot_all() -> Vec<HistSnapshot> {
    registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|h| h.snapshot())
        .collect()
}

/// Zero every registered histogram.
pub fn reset_all() {
    for h in registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner).iter() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::test_global_lock as enable_lock;

    #[test]
    fn bounds_are_strictly_increasing_and_cover_seconds() {
        for w in BOUNDS.windows(2) {
            assert!(w[0] < w[1], "bounds must strictly increase: {w:?}");
        }
        // ×√2 per bucket from 1 ns lands the top bucket near ~1.9 s —
        // past every serving deadline, with multi-second outliers
        // collected by the unbounded top bucket.
        assert!(BOUNDS[BUCKETS - 1] > 1_500_000_000, "top bound {}", BOUNDS[BUCKETS - 1]);
        // And the growth factor stays close to √2 once out of the +1 floor.
        let ratio = BOUNDS[40] as f64 / BOUNDS[39] as f64;
        assert!((ratio - std::f64::consts::SQRT_2).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn bucket_of_respects_bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        for (i, &bound) in BOUNDS.iter().enumerate().skip(1) {
            assert_eq!(bucket_of(bound), i, "lower edge of bucket {i}");
            assert_eq!(bucket_of(bound - 1), i - 1, "just below bucket {i}");
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_exact_within_one_bucket() {
        let _g = enable_lock();
        pmm_obs::set_enabled(true);
        static H: Histogram = Histogram::new("test_quantiles");
        // 90 fast observations at 1 µs, 10 slow at 100 ms.
        for _ in 0..90 {
            H.observe_ns(1_000);
        }
        for _ in 0..10 {
            H.observe_ns(100_000_000);
        }
        let s = H.snapshot();
        assert_eq!(s.count, 100);
        let p50 = s.quantile_ns(0.50);
        let p95 = s.quantile_ns(0.95);
        // p50 lands in the 1 µs bucket: its upper edge is within √2.
        assert!((1_000..=1_500).contains(&p50), "p50 {p50}");
        assert!((100_000_000..=150_000_000).contains(&p95), "p95 {p95}");
        assert!(s.quantile_ns(1.0) >= 100_000_000);
        assert!((s.mean_ns() - (90.0 * 1_000.0 + 10.0 * 100_000_000.0) / 100.0).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let s = HistSnapshot::empty("e");
        assert_eq!(s.quantile_ns(0.99), 0);
        assert_eq!(s.mean_ns(), 0.0);
    }

    #[test]
    fn delta_since_isolates_a_window() {
        let _g = enable_lock();
        pmm_obs::set_enabled(true);
        static H: Histogram = Histogram::new("test_delta");
        H.observe_ns(10);
        let base = H.snapshot();
        H.observe_ns(10);
        H.observe_ns(20);
        let win = H.snapshot().delta_since(&base);
        assert_eq!(win.count, 2);
        assert_eq!(win.sum_ns, 30);
        assert_eq!(win.buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn disabled_collection_records_nothing() {
        let _g = enable_lock();
        static H: Histogram = Histogram::new("test_disabled");
        pmm_obs::set_enabled(false);
        H.observe_ns(123);
        assert_eq!(H.snapshot().count, 0);
        pmm_obs::set_enabled(true);
    }

    #[test]
    fn registry_enumerates_stage_histograms_once() {
        let names: Vec<&str> = snapshot_all().iter().map(|s| s.name).collect();
        for want in [
            "stage_queue_wait_ns",
            "stage_encode_ns",
            "stage_user_encode_ns",
            "stage_rank_ns",
            "request_total_ns",
            "swap_drain_ns",
            "stage_ingest_ns",
            "stage_shard_rank_ns",
        ] {
            assert_eq!(names.iter().filter(|n| **n == want).count(), 1, "{want}");
        }
        // Re-registering a built-in is a no-op.
        register(&H_RANK);
        assert_eq!(snapshot_all().len(), names.len());
    }
}
