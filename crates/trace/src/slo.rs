//! SLO evaluation over a metrics window.
//!
//! An [`SloPolicy`] sets thresholds on the serving stack's six
//! user-visible degradation signals: deadline-miss rate, shed rate,
//! accumulated breaker-open time, the fraction of responses served
//! from the model-free floor tiers (cache/popularity), the worker
//! restart rate (crash-looping), and accumulated snapshot hot-swap
//! drain time. [`evaluate`]
//! turns one metrics window into an [`SloReport`] of per-check burn
//! rates (observed / threshold; > 1 is a breach), logging each breach
//! as a warning and an `"ev":"slo"` sink event so CI and dashboards
//! see the same evidence. Callers gate CI by exiting non-zero when
//! [`SloReport::ok`] is false.

use crate::metrics::MetricsSnapshot;
use pmm_obs::obs_warn;

/// Thresholds the serving window must stay under.
#[derive(Debug, Clone, Copy)]
pub struct SloPolicy {
    /// Deadline misses per accepted request.
    pub max_deadline_miss_rate: f64,
    /// Shed submissions per submitted request.
    pub max_shed_rate: f64,
    /// Total breaker-open nanoseconds accumulated over the window
    /// (accounted when a breaker closes).
    pub max_breaker_open_ns: u64,
    /// Fraction of served responses from the model-free floor tiers
    /// (cached top-k + popularity).
    pub max_floor_frac: f64,
    /// Worker restarts per accepted request — crash-looping burns this
    /// budget even when every individual request still resolves.
    pub max_restart_rate: f64,
    /// Total nanoseconds snapshot hot-swaps spent draining over the
    /// window (epoch flip until every live worker adopted the new
    /// snapshot).
    pub max_swap_drain_ns: u64,
    /// Fraction of catalog shards missing from scatter-gather answers
    /// (quarantined / given-up shards). 0.25 keeps the ≥ 75% coverage
    /// floor: a partial answer is acceptable, a mostly-dark catalog is
    /// not.
    pub max_shard_miss_rate: f64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            max_deadline_miss_rate: 0.10,
            max_shed_rate: 0.25,
            max_breaker_open_ns: 5_000_000_000,
            max_floor_frac: 0.50,
            max_restart_rate: 0.20,
            max_swap_drain_ns: 5_000_000_000,
            max_shard_miss_rate: 0.25,
        }
    }
}

/// One evaluated SLO dimension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloCheck {
    pub name: &'static str,
    /// Observed value over the window.
    pub value: f64,
    /// The policy threshold.
    pub threshold: f64,
}

impl SloCheck {
    /// Observed / threshold; > 1 means the budget is burning faster
    /// than the policy allows. 0 when the threshold is 0 and nothing
    /// was observed; infinite when something was.
    pub fn burn_rate(&self) -> f64 {
        if self.threshold > 0.0 {
            self.value / self.threshold
        } else if self.value > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    }

    pub fn breached(&self) -> bool {
        self.value > self.threshold
    }
}

/// Every check of one evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    pub checks: Vec<SloCheck>,
}

impl SloReport {
    /// Whether every check held.
    pub fn ok(&self) -> bool {
        self.checks.iter().all(|c| !c.breached())
    }

    /// The breached checks, if any.
    pub fn breaches(&self) -> Vec<&SloCheck> {
        self.checks.iter().filter(|c| c.breached()).collect()
    }
}

/// Evaluate `window` against `policy`. Rates divide by
/// `max(denominator, 1)` so an empty window evaluates clean instead of
/// NaN. Breaches are logged (`obs_warn`) and emitted as `"ev":"slo"`
/// sink events with their burn rates.
pub fn evaluate(window: &MetricsSnapshot, policy: &SloPolicy) -> SloReport {
    let requests = window.counter("serve_requests");
    let shed = window.counter("serve_shed");
    let accepted = requests.saturating_sub(shed);
    let misses = window.counter("serve_deadline_misses");
    let served: u64 = [
        "serve_tier_full",
        "serve_tier_single",
        "serve_tier_cached",
        "serve_tier_pop",
    ]
    .iter()
    .map(|n| window.counter(n))
    .sum();
    let floor = window.counter("serve_tier_cached") + window.counter("serve_tier_pop");

    let rate = |num: u64, den: u64| num as f64 / den.max(1) as f64;
    let checks = vec![
        SloCheck {
            name: "deadline_miss_rate",
            value: rate(misses, accepted),
            threshold: policy.max_deadline_miss_rate,
        },
        SloCheck {
            name: "shed_rate",
            value: rate(shed, requests),
            threshold: policy.max_shed_rate,
        },
        SloCheck {
            name: "breaker_open_ns",
            value: window.counter("serve_breaker_open_ns") as f64,
            threshold: policy.max_breaker_open_ns as f64,
        },
        SloCheck {
            name: "floor_frac",
            value: rate(floor, served),
            threshold: policy.max_floor_frac,
        },
        SloCheck {
            name: "restart_rate",
            value: rate(window.counter("serve_worker_restarts"), accepted),
            threshold: policy.max_restart_rate,
        },
        SloCheck {
            name: "swap_drain_ns",
            value: window.counter("serve_swap_drain_ns") as f64,
            threshold: policy.max_swap_drain_ns as f64,
        },
        SloCheck {
            name: "shard_miss_rate",
            value: rate(
                window
                    .counter("serve_shards_total")
                    .saturating_sub(window.counter("serve_shards_served")),
                window.counter("serve_shards_total"),
            ),
            threshold: policy.max_shard_miss_rate,
        },
    ];
    let report = SloReport { checks };
    for c in report.breaches() {
        obs_warn!(
            "slo",
            "SLO breach: {} = {:.4} exceeds {:.4} (burn rate {:.2}x)",
            c.name,
            c.value,
            c.threshold,
            c.burn_rate()
        );
        pmm_obs::sink::emit_obj(
            pmm_obs::json::JsonObj::new()
                .str("ev", "slo")
                .str("check", c.name)
                .f64("value", c.value)
                .f64("threshold", c.threshold)
                .f64("burn_rate", c.burn_rate())
                .bool("breached", true),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsSnapshot;

    fn window(counters: Vec<(&'static str, u64)>) -> MetricsSnapshot {
        MetricsSnapshot { counters, hists: Vec::new(), worker_restarts: Vec::new() }
    }

    #[test]
    fn clean_window_passes_every_check() {
        let w = window(vec![
            ("serve_requests", 20),
            ("serve_shed", 0),
            ("serve_deadline_misses", 0),
            ("serve_tier_full", 20),
        ]);
        let report = evaluate(&w, &SloPolicy::default());
        assert!(report.ok(), "{report:?}");
        assert!(report.breaches().is_empty());
    }

    #[test]
    fn empty_window_is_clean_not_nan() {
        let report = evaluate(&window(Vec::new()), &SloPolicy::default());
        assert!(report.ok());
        for c in &report.checks {
            assert!(c.value.is_finite());
        }
    }

    #[test]
    fn excess_deadline_misses_breach_with_burn_rate() {
        // 18 accepted, 5 missed: 27.8% against a 10% budget.
        let w = window(vec![
            ("serve_requests", 18),
            ("serve_shed", 0),
            ("serve_deadline_misses", 5),
            ("serve_tier_full", 13),
        ]);
        let report = evaluate(&w, &SloPolicy::default());
        assert!(!report.ok());
        let breaches = report.breaches();
        assert_eq!(breaches.len(), 1);
        let miss = breaches.first().copied().expect("one breach");
        assert_eq!(miss.name, "deadline_miss_rate");
        assert!((miss.burn_rate() - (5.0 / 18.0) / 0.10).abs() < 1e-9);
    }

    #[test]
    fn floor_fraction_and_shed_rate_breach_independently() {
        let w = window(vec![
            ("serve_requests", 40),
            ("serve_shed", 20),
            ("serve_tier_full", 2),
            ("serve_tier_cached", 9),
            ("serve_tier_pop", 9),
        ]);
        let report = evaluate(&w, &SloPolicy::default());
        let names: Vec<&str> = report.breaches().iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["shed_rate", "floor_frac"]);
    }

    #[test]
    fn crash_looping_breaches_restart_rate() {
        // 20 accepted, 6 restarts: 30% against a 20% budget — every
        // request resolved, but the fleet is visibly churning.
        let w = window(vec![
            ("serve_requests", 20),
            ("serve_shed", 0),
            ("serve_tier_full", 20),
            ("serve_worker_restarts", 6),
        ]);
        let report = evaluate(&w, &SloPolicy::default());
        let names: Vec<&str> = report.breaches().iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["restart_rate"]);
    }

    #[test]
    fn slow_swap_drain_breaches_nanosecond_budget() {
        let w = window(vec![
            ("serve_requests", 4),
            ("serve_tier_full", 4),
            ("serve_swaps", 1),
            ("serve_swap_drain_ns", 6_000_000_000),
        ]);
        let report = evaluate(&w, &SloPolicy::default());
        let names: Vec<&str> = report.breaches().iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["swap_drain_ns"]);
    }

    #[test]
    fn shard_coverage_floor_breaches_past_one_quarter_missing() {
        // 4 requests × 4 shards, one shard quarantined throughout:
        // 25% missing sits exactly at the budget and passes.
        let at_floor = window(vec![
            ("serve_requests", 4),
            ("serve_tier_full", 4),
            ("serve_shards_served", 12),
            ("serve_shards_total", 16),
        ]);
        assert!(evaluate(&at_floor, &SloPolicy::default()).ok());
        // Two of four shards dark: 50% missing breaches.
        let dark = window(vec![
            ("serve_requests", 4),
            ("serve_tier_full", 4),
            ("serve_shards_served", 8),
            ("serve_shards_total", 16),
        ]);
        let report = evaluate(&dark, &SloPolicy::default());
        let names: Vec<&str> = report.breaches().iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["shard_miss_rate"]);
        // Unsharded windows (no shard counters at all) stay clean.
        assert!(evaluate(&window(Vec::new()), &SloPolicy::default()).ok());
    }

    #[test]
    fn breaker_open_time_checks_against_nanosecond_budget() {
        let w = window(vec![("serve_requests", 1), ("serve_breaker_open_ns", 6_000_000_000)]);
        let report = evaluate(&w, &SloPolicy::default());
        let names: Vec<&str> = report.breaches().iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["breaker_open_ns"]);
        assert_eq!(SloCheck { name: "x", value: 1.0, threshold: 0.0 }.burn_rate(), f64::INFINITY);
    }
}
