//! Platforms and their content-style profiles.

/// The four source platforms of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Bilibili — short videos, complex poster-style covers.
    Bili,
    /// Kuaishou — short videos, complex covers, noisiest interactions.
    Kwai,
    /// H&M — e-commerce, clean product photography.
    Hm,
    /// Amazon — e-commerce, clean product photography.
    Amazon,
}

impl Platform {
    /// All platforms, in the paper's order.
    pub const ALL: [Platform; 4] = [Platform::Bili, Platform::Kwai, Platform::Hm, Platform::Amazon];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Platform::Bili => "Bili",
            Platform::Kwai => "Kwai",
            Platform::Hm => "HM",
            Platform::Amazon => "Amazon",
        }
    }

    /// Whether the platform has "complex" visual content (short-video
    /// posters) as opposed to clean product shots.
    pub fn is_complex(self) -> bool {
        matches!(self, Platform::Bili | Platform::Kwai)
    }

    /// The content-style profile used by the generators.
    pub fn style(self) -> StyleProfile {
        match self {
            // Short-video platforms: cluttered posters, frequent
            // text/image mismatch, noisy implicit feedback.
            Platform::Bili => StyleProfile {
                visual_noise: 0.9,
                clutter_rate: 0.35,
                text_noise_rate: 0.20,
                mismatch_rate: 0.12,
                interaction_noise: 0.15,
                style_shift_seed: 11,
            },
            Platform::Kwai => StyleProfile {
                visual_noise: 1.0,
                clutter_rate: 0.40,
                text_noise_rate: 0.25,
                mismatch_rate: 0.15,
                interaction_noise: 0.18,
                style_shift_seed: 12,
            },
            // E-commerce platforms: clean backgrounds, consistent
            // descriptions, lower feedback noise.
            Platform::Hm => StyleProfile {
                visual_noise: 0.25,
                clutter_rate: 0.05,
                text_noise_rate: 0.05,
                mismatch_rate: 0.02,
                interaction_noise: 0.06,
                style_shift_seed: 13,
            },
            Platform::Amazon => StyleProfile {
                visual_noise: 0.30,
                clutter_rate: 0.08,
                text_noise_rate: 0.08,
                mismatch_rate: 0.03,
                interaction_noise: 0.08,
                style_shift_seed: 14,
            },
        }
    }

    /// Semantic categories present on the platform (indices into the
    /// world's category list; see [`crate::world::CATEGORY_NAMES`]).
    pub fn categories(self) -> &'static [usize] {
        match self {
            // food, movie, cartoon
            Platform::Bili | Platform::Kwai => &[0, 1, 2],
            // clothes, shoes
            Platform::Hm | Platform::Amazon => &[3, 4],
        }
    }
}

/// Content/interaction noise characteristics of a platform.
#[derive(Debug, Clone, Copy)]
pub struct StyleProfile {
    /// Std of gaussian noise on image patches.
    pub visual_noise: f32,
    /// Probability that a patch is pure background clutter.
    pub clutter_rate: f32,
    /// Probability that a text token is replaced by a noise token.
    pub text_noise_rate: f32,
    /// Probability that an item's image is generated from an unrelated
    /// latent (text/image mismatch, Section I "severe data noises").
    pub mismatch_rate: f32,
    /// Probability that a logged interaction is random noise rather
    /// than preference-driven.
    pub interaction_noise: f32,
    /// Seed selecting the platform's deterministic image style shift.
    pub style_shift_seed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn video_platforms_are_noisier_than_ecommerce() {
        for video in [Platform::Bili, Platform::Kwai] {
            for shop in [Platform::Hm, Platform::Amazon] {
                assert!(video.style().visual_noise > shop.style().visual_noise);
                assert!(video.style().mismatch_rate > shop.style().mismatch_rate);
                assert!(video.style().interaction_noise > shop.style().interaction_noise);
            }
        }
    }

    #[test]
    fn platform_categories_partition_by_domain() {
        assert_eq!(Platform::Bili.categories(), Platform::Kwai.categories());
        assert_eq!(Platform::Hm.categories(), Platform::Amazon.categories());
        assert!(Platform::Bili
            .categories()
            .iter()
            .all(|c| !Platform::Hm.categories().contains(c)));
    }

    #[test]
    fn complexity_flag_matches_platform_type() {
        assert!(Platform::Bili.is_complex());
        assert!(Platform::Kwai.is_complex());
        assert!(!Platform::Hm.is_complex());
        assert!(!Platform::Amazon.is_complex());
    }
}
