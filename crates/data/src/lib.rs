//! # pmm-data
//!
//! A generative *world model* standing in for the paper's proprietary
//! multi-modal recommendation datasets (Amazon, HM, Bili, Kwai), plus
//! all dataset tooling: preprocessing, splits, batching, sequence
//! corruption and cold-start carving.
//!
//! ## The world model
//!
//! The paper's central claim (Fig. 1) is that *transition patterns* are
//! universal across platforms even when the content styles differ. The
//! synthetic world encodes exactly that:
//!
//! * A shared latent semantic space with `K` categories (food, movie,
//!   cartoon, clothes, shoes) whose centroids are global constants.
//! * A single global category-level Markov transition matrix drives
//!   every user sequence on every platform — the transferable signal.
//! * Each [`Platform`] has a [`StyleProfile`]: how noisy its images are
//!   (clean product shots vs cluttered video posters), how often text
//!   and image mismatch, and how noisy the interaction logs are — the
//!   non-transferable nuisance.
//! * Items express their latent vector through **text** (descriptor
//!   tokens bucketising the latent coordinates) and through **image**
//!   (fixed random projections of the latent into patch space). Item
//!   IDs are arbitrary per dataset and never shared — exactly the
//!   setting PMMRec targets.
//!
//! The 14 datasets of the paper (4 sources, 10 category-sliced targets)
//! are reproduced at reduced scale by [`registry`].

pub mod analysis;
pub mod batch;
pub mod cold;
pub mod corrupt;
pub mod dataset;
pub mod io;
pub mod ratings;
pub mod registry;
pub mod split;
pub mod style;
pub mod users;
pub mod world;

pub use batch::{Batch, BatchIter};
pub use cold::{cold_holdout, cold_items, cold_start_cases, ColdStartCase};
pub use corrupt::{corrupt_sequence, CorruptionConfig, NidLabel};
pub use dataset::{ContentSpec, Dataset, DatasetStats};
pub use io::{load_dataset, save_dataset, DataError, DatasetBuilder};
pub use ratings::{synthesize_ratings, Ratings};
pub use registry::{build_dataset, fused_sources, DatasetId, Scale, SOURCES, TARGETS};
pub use split::{LeaveOneOut, SplitDataset};
pub use style::{Platform, StyleProfile};
pub use users::SequenceGenerator;
pub use world::{Item, World, WorldConfig};
