//! Leave-one-out splitting (the paper's evaluation protocol).

use crate::dataset::Dataset;

/// One held-out evaluation case: a prefix and the ground-truth next item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaveOneOut {
    /// Input prefix (chronological item indices).
    pub prefix: Vec<usize>,
    /// Item to be ranked first.
    pub target: usize,
}

/// Train sequences plus validation/test leave-one-out cases.
#[derive(Clone)]
pub struct SplitDataset {
    /// The underlying dataset (items + full sequences).
    pub dataset: Dataset,
    /// Training sequences: each user's sequence minus the last two
    /// interactions.
    pub train: Vec<Vec<usize>>,
    /// Validation cases: predict the second-to-last item from the
    /// preceding prefix.
    pub valid: Vec<LeaveOneOut>,
    /// Test cases: predict the last item from everything before it.
    pub test: Vec<LeaveOneOut>,
}

impl SplitDataset {
    /// Standard leave-one-out split. Users whose sequences are too
    /// short to yield a non-empty train prefix (fewer than 3 items) are
    /// used for training only.
    pub fn new(dataset: Dataset) -> SplitDataset {
        let mut train = Vec::with_capacity(dataset.sequences.len());
        let mut valid = Vec::new();
        let mut test = Vec::new();
        for s in &dataset.sequences {
            if s.len() < 3 {
                train.push(s.clone());
                continue;
            }
            let n = s.len();
            train.push(s[..n - 2].to_vec());
            valid.push(LeaveOneOut {
                prefix: s[..n - 2].to_vec(),
                target: s[n - 2],
            });
            test.push(LeaveOneOut {
                prefix: s[..n - 1].to_vec(),
                target: s[n - 1],
            });
        }
        SplitDataset {
            dataset,
            train,
            valid,
            test,
        }
    }

    /// Number of items in the catalogue (ranking candidates).
    pub fn n_items(&self) -> usize {
        self.dataset.items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::style::Platform;
    use crate::world::{World, WorldConfig};

    fn ds(seqs: Vec<Vec<usize>>) -> Dataset {
        let world = World::new(WorldConfig::default());
        let style = Platform::Amazon.style();
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        let items = (0..10).map(|_| world.sample_item(3, &style, &mut rng)).collect();
        Dataset {
            name: "t".into(),
            platform: Platform::Amazon,
            content: crate::dataset::ContentSpec::from_world(&world.cfg),
            items,
            sequences: seqs,
        }
    }

    #[test]
    fn split_holds_out_last_two() {
        let split = SplitDataset::new(ds(vec![vec![1, 2, 3, 4, 5]]));
        assert_eq!(split.train, vec![vec![1, 2, 3]]);
        assert_eq!(split.valid[0], LeaveOneOut { prefix: vec![1, 2, 3], target: 4 });
        assert_eq!(split.test[0], LeaveOneOut { prefix: vec![1, 2, 3, 4], target: 5 });
    }

    #[test]
    fn short_sequences_train_only() {
        let split = SplitDataset::new(ds(vec![vec![1, 2]]));
        assert_eq!(split.train.len(), 1);
        assert!(split.valid.is_empty() && split.test.is_empty());
    }

    #[test]
    fn split_counts_are_consistent() {
        let split = SplitDataset::new(ds(vec![vec![1, 2, 3], vec![4, 5, 6, 7], vec![8, 9]]));
        assert_eq!(split.train.len(), 3);
        assert_eq!(split.valid.len(), 2);
        assert_eq!(split.test.len(), 2);
        // Disjointness: the test target never appears in that user's train prefix length.
        for (t, tr) in split.test.iter().zip(&split.train) {
            assert_eq!(t.prefix.len(), tr.len() + 1);
        }
    }
}
