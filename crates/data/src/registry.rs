//! The named datasets of the paper (Table II) at reduced scale.
//!
//! Four sources (full platform category mix) and ten targets (single
//! category slices), all generated from the one shared [`World`] so
//! that transition patterns transfer while items do not.

use crate::dataset::Dataset;
use crate::style::Platform;
use crate::users::{GeneratorSpec, SequenceGenerator};
use crate::world::World;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// All fourteen datasets of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// Source: Bilibili (food + movie + cartoon).
    Bili,
    /// Source: Kuaishou (food + movie + cartoon).
    Kwai,
    /// Source: H&M (clothes + shoes).
    Hm,
    /// Source: Amazon (clothes + shoes).
    Amazon,
    /// Target slice.
    BiliFood,
    /// Target slice.
    BiliMovie,
    /// Target slice.
    BiliCartoon,
    /// Target slice.
    KwaiFood,
    /// Target slice.
    KwaiMovie,
    /// Target slice.
    KwaiCartoon,
    /// Target slice.
    HmClothes,
    /// Target slice.
    HmShoes,
    /// Target slice.
    AmazonClothes,
    /// Target slice.
    AmazonShoes,
}

/// The four pre-training sources, in the paper's order.
pub const SOURCES: [DatasetId; 4] = [
    DatasetId::Bili,
    DatasetId::Kwai,
    DatasetId::Hm,
    DatasetId::Amazon,
];

/// The ten downstream targets, in the paper's order.
pub const TARGETS: [DatasetId; 10] = [
    DatasetId::BiliFood,
    DatasetId::BiliMovie,
    DatasetId::BiliCartoon,
    DatasetId::KwaiFood,
    DatasetId::KwaiMovie,
    DatasetId::KwaiCartoon,
    DatasetId::HmClothes,
    DatasetId::HmShoes,
    DatasetId::AmazonClothes,
    DatasetId::AmazonShoes,
];

impl DatasetId {
    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Bili => "Bili",
            DatasetId::Kwai => "Kwai",
            DatasetId::Hm => "HM",
            DatasetId::Amazon => "Amazon",
            DatasetId::BiliFood => "Bili_Food",
            DatasetId::BiliMovie => "Bili_Movie",
            DatasetId::BiliCartoon => "Bili_Cartoon",
            DatasetId::KwaiFood => "Kwai_Food",
            DatasetId::KwaiMovie => "Kwai_Movie",
            DatasetId::KwaiCartoon => "Kwai_Cartoon",
            DatasetId::HmClothes => "HM_Clothes",
            DatasetId::HmShoes => "HM_Shoes",
            DatasetId::AmazonClothes => "Amazon_Clothes",
            DatasetId::AmazonShoes => "Amazon_Shoes",
        }
    }

    /// Platform providing content style.
    pub fn platform(self) -> Platform {
        match self {
            DatasetId::Bili | DatasetId::BiliFood | DatasetId::BiliMovie | DatasetId::BiliCartoon => {
                Platform::Bili
            }
            DatasetId::Kwai | DatasetId::KwaiFood | DatasetId::KwaiMovie | DatasetId::KwaiCartoon => {
                Platform::Kwai
            }
            DatasetId::Hm | DatasetId::HmClothes | DatasetId::HmShoes => Platform::Hm,
            DatasetId::Amazon | DatasetId::AmazonClothes | DatasetId::AmazonShoes => Platform::Amazon,
        }
    }

    /// Whether this is one of the four sources.
    pub fn is_source(self) -> bool {
        SOURCES.contains(&self)
    }

    /// Category restriction (None for the full-platform sources).
    fn category(self) -> Option<usize> {
        match self {
            DatasetId::BiliFood | DatasetId::KwaiFood => Some(0),
            DatasetId::BiliMovie | DatasetId::KwaiMovie => Some(1),
            DatasetId::BiliCartoon | DatasetId::KwaiCartoon => Some(2),
            DatasetId::HmClothes | DatasetId::AmazonClothes => Some(3),
            DatasetId::HmShoes | DatasetId::AmazonShoes => Some(4),
            _ => None,
        }
    }

    /// Per-dataset generation seed offset (so datasets are mutually
    /// independent given the experiment seed).
    fn seed_offset(self) -> u64 {
        match self {
            DatasetId::Bili => 1,
            DatasetId::Kwai => 2,
            DatasetId::Hm => 3,
            DatasetId::Amazon => 4,
            DatasetId::BiliFood => 10,
            DatasetId::BiliMovie => 11,
            DatasetId::BiliCartoon => 12,
            DatasetId::KwaiFood => 13,
            DatasetId::KwaiMovie => 14,
            DatasetId::KwaiCartoon => 15,
            DatasetId::HmClothes => 16,
            DatasetId::HmShoes => 17,
            DatasetId::AmazonClothes => 18,
            DatasetId::AmazonShoes => 19,
        }
    }
}

/// Generation scale. `Tiny` keeps tests fast; `Paper` is the default
/// for the table-regeneration binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minimal datasets for unit/integration tests.
    Tiny,
    /// The experiment scale used by the bench harness.
    Paper,
}

impl Scale {
    /// `(n_users, n_items, min_len, max_len)` for a dataset id.
    fn sizing(self, id: DatasetId) -> (usize, usize, usize, usize) {
        match (self, id.is_source()) {
            (Scale::Tiny, true) => (60, 24, 5, 9),
            (Scale::Tiny, false) => (40, 14, 5, 8),
            (Scale::Paper, true) => match id {
                // Relative sizes mirror Table II: HM is the biggest
                // source, Kwai has many users with short sequences,
                // Amazon is the smallest and shortest.
                DatasetId::Bili => (550, 480, 6, 16),
                DatasetId::Kwai => (650, 420, 5, 10),
                DatasetId::Hm => (700, 540, 6, 16),
                _ => (450, 430, 5, 10),
            },
            (Scale::Paper, false) => match id.platform() {
                Platform::Bili => (220, 170, 5, 10),
                Platform::Kwai => (230, 180, 5, 11),
                Platform::Hm => (240, 190, 5, 10),
                Platform::Amazon => (210, 176, 5, 10),
            },
        }
    }
}

/// Builds (and 5-core preprocesses) one named dataset.
pub fn build_dataset(world: &World, id: DatasetId, scale: Scale, seed: u64) -> Dataset {
    let (n_users, n_items, min_len, max_len) = scale.sizing(id);
    let spec = GeneratorSpec {
        platform: id.platform(),
        categories: id.category().map(|c| vec![c]),
        n_users,
        n_items,
        min_len,
        max_len,
        zipf_s: 0.35,
    };
    let generator = SequenceGenerator::new(world, spec);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(id.seed_offset()));
    let items = generator.items(&mut rng);
    let sequences = generator.sequences(&items, &mut rng);
    Dataset {
        name: id.name().to_string(),
        platform: id.platform(),
        content: crate::dataset::ContentSpec::from_world(&world.cfg),
        items,
        sequences,
    }
    .five_core(5)
}

/// Builds the fused 4-source pre-training corpus.
pub fn fused_sources(world: &World, scale: Scale, seed: u64) -> Dataset {
    let parts: Vec<Dataset> = SOURCES
        .iter()
        .map(|&id| build_dataset(world, id, scale, seed))
        .collect();
    Dataset::fuse("Source", &parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    #[test]
    fn all_fourteen_datasets_build_at_tiny_scale() {
        let world = World::new(WorldConfig::default());
        for id in SOURCES.into_iter().chain(TARGETS) {
            let ds = build_dataset(&world, id, Scale::Tiny, 42);
            let stats = ds.stats();
            assert!(stats.users > 10, "{}: only {} users survived", id.name(), stats.users);
            assert!(stats.items > 5, "{}: only {} items survived", id.name(), stats.items);
            assert!(stats.avg_length >= 4.0, "{}: avg len {}", id.name(), stats.avg_length);
        }
    }

    #[test]
    fn datasets_are_seed_deterministic() {
        let world = World::new(WorldConfig::default());
        let a = build_dataset(&world, DatasetId::BiliFood, Scale::Tiny, 7);
        let b = build_dataset(&world, DatasetId::BiliFood, Scale::Tiny, 7);
        assert_eq!(a.sequences, b.sequences);
        let c = build_dataset(&world, DatasetId::BiliFood, Scale::Tiny, 8);
        assert_ne!(a.sequences, c.sequences);
    }

    #[test]
    fn target_slices_are_single_category() {
        let world = World::new(WorldConfig::default());
        let ds = build_dataset(&world, DatasetId::KwaiCartoon, Scale::Tiny, 42);
        assert!(ds.items.iter().all(|i| i.category == 2));
    }

    #[test]
    fn fused_sources_concatenate_all_platforms() {
        let world = World::new(WorldConfig::default());
        let fused = fused_sources(&world, Scale::Tiny, 42);
        let individual: usize = SOURCES
            .iter()
            .map(|&id| build_dataset(&world, id, Scale::Tiny, 42).stats().users)
            .sum();
        assert_eq!(fused.stats().users, individual);
        // Items from multiple categories present.
        let cats: std::collections::HashSet<usize> =
            fused.items.iter().map(|i| i.category).collect();
        assert_eq!(cats.len(), 5);
    }

    #[test]
    fn five_core_invariant_holds_after_build() {
        let world = World::new(WorldConfig::default());
        let ds = build_dataset(&world, DatasetId::Hm, Scale::Tiny, 42);
        let mut counts = std::collections::HashMap::<usize, usize>::new();
        for s in &ds.sequences {
            assert!(s.len() >= 5);
            for &i in s {
                *counts.entry(i).or_default() += 1;
            }
        }
        assert!(counts.values().all(|&c| c >= 5));
    }
}
