//! Padded mini-batching of user sequences.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// A padded batch of user sequences in `(b, l)` row-major layout.
///
/// Padding rows reuse item id 0; every consumer must honour `lens`
/// (loss row-weights and attention masks are derived from it), so the
/// padded content never influences training.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Number of sequences.
    pub b: usize,
    /// Padded capacity.
    pub l: usize,
    /// Flattened `b*l` item ids.
    pub items: Vec<usize>,
    /// Valid lengths per sequence.
    pub lens: Vec<usize>,
}

impl Batch {
    /// Builds a batch from raw sequences, truncating each to its most
    /// recent `max_len` items.
    #[track_caller]
    pub fn from_sequences(seqs: &[&[usize]], max_len: usize) -> Batch {
        assert!(!seqs.is_empty(), "Batch: empty batch");
        assert!(max_len > 0, "Batch: max_len must be positive");
        let lens: Vec<usize> = seqs.iter().map(|s| s.len().min(max_len)).collect();
        let l = *lens.iter().max().expect("non-empty");
        let b = seqs.len();
        let mut items = vec![0usize; b * l];
        for (bi, s) in seqs.iter().enumerate() {
            let tail = &s[s.len() - lens[bi]..];
            items[bi * l..bi * l + lens[bi]].copy_from_slice(tail);
        }
        Batch { b, l, items, lens }
    }

    /// The valid item id at `(bi, t)`, if within the sequence.
    pub fn item_at(&self, bi: usize, t: usize) -> Option<usize> {
        (t < self.lens[bi]).then(|| self.items[bi * self.l + t])
    }

    /// Distinct item ids appearing in the batch (the NID replacement
    /// pool and in-batch negative sets).
    pub fn distinct_items(&self) -> Vec<usize> {
        let mut pool: Vec<usize> = self
            .lens
            .iter()
            .enumerate()
            .flat_map(|(bi, &len)| self.items[bi * self.l..bi * self.l + len].iter().copied())
            .collect();
        pool.sort_unstable();
        pool.dedup();
        pool
    }
}

/// Epoch iterator: shuffles sequence order, yields fixed-size batches.
pub struct BatchIter<'a> {
    seqs: &'a [Vec<usize>],
    order: Vec<usize>,
    cursor: usize,
    batch_size: usize,
    max_len: usize,
}

impl<'a> BatchIter<'a> {
    /// Starts one epoch over `seqs`, skipping sequences shorter than 2
    /// (no next-item signal).
    pub fn new(seqs: &'a [Vec<usize>], batch_size: usize, max_len: usize, rng: &mut StdRng) -> Self {
        let mut order: Vec<usize> = (0..seqs.len()).filter(|&i| seqs[i].len() >= 2).collect();
        order.shuffle(rng);
        BatchIter {
            seqs,
            order,
            cursor: 0,
            batch_size,
            max_len,
        }
    }
}

impl Iterator for BatchIter<'_> {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let chunk: Vec<&[usize]> = self.order[self.cursor..end]
            .iter()
            .map(|&i| self.seqs[i].as_slice())
            .collect();
        self.cursor = end;
        Some(Batch::from_sequences(&chunk, self.max_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn batch_pads_and_truncates() {
        let s1 = vec![1usize, 2, 3];
        let s2 = vec![4usize, 5, 6, 7, 8, 9];
        let batch = Batch::from_sequences(&[&s1, &s2], 4);
        assert_eq!(batch.b, 2);
        assert_eq!(batch.l, 4);
        assert_eq!(batch.lens, vec![3, 4]);
        // Second sequence keeps its most recent 4 items.
        assert_eq!(&batch.items[4..], &[6, 7, 8, 9]);
        assert_eq!(&batch.items[..4], &[1, 2, 3, 0]);
        assert_eq!(batch.item_at(0, 3), None);
        assert_eq!(batch.item_at(1, 3), Some(9));
    }

    #[test]
    fn distinct_items_ignores_padding() {
        let s1 = vec![5usize, 5];
        let s2 = vec![7usize, 8, 9];
        let batch = Batch::from_sequences(&[&s1, &s2], 3);
        assert_eq!(batch.distinct_items(), vec![5, 7, 8, 9]);
    }

    #[test]
    fn iterator_covers_all_long_sequences_once() {
        let seqs: Vec<Vec<usize>> = (0..10).map(|i| vec![i; 3]).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = 0;
        for batch in BatchIter::new(&seqs, 4, 8, &mut rng) {
            seen += batch.b;
        }
        assert_eq!(seen, 10);
    }

    #[test]
    fn iterator_skips_singletons() {
        let seqs = vec![vec![1usize], vec![2usize, 3]];
        let mut rng = StdRng::seed_from_u64(0);
        let total: usize = BatchIter::new(&seqs, 4, 8, &mut rng).map(|b| b.b).sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn shuffling_is_seed_dependent_but_deterministic() {
        let seqs: Vec<Vec<usize>> = (0..32).map(|i| vec![i, i + 1]).collect();
        let collect = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            BatchIter::new(&seqs, 8, 8, &mut rng)
                .flat_map(|b| b.items.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(1), collect(1));
        assert_ne!(collect(1), collect(2));
    }
}
