//! Cold-start evaluation carving (Section IV-F2 of the paper).
//!
//! Items with fewer than `threshold` occurrences in the training data
//! are "cold". Every full user sequence is truncated at each cold-item
//! position, yielding evaluation cases whose target is a cold item.

use crate::split::SplitDataset;
use std::collections::HashMap;

/// One cold-start case: a prefix ending right before a cold item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColdStartCase {
    /// Input prefix.
    pub prefix: Vec<usize>,
    /// The cold item to predict.
    pub target: usize,
}

/// Items occurring fewer than `threshold` times in the train split.
pub fn cold_items(split: &SplitDataset, threshold: usize) -> Vec<usize> {
    let mut counts: HashMap<usize, usize> = HashMap::new();
    for s in &split.train {
        for &i in s {
            *counts.entry(i).or_default() += 1;
        }
    }
    (0..split.n_items())
        .filter(|i| counts.get(i).copied().unwrap_or(0) < threshold)
        .collect()
}

/// Builds cold-start cases: held-out occurrences of cold items.
///
/// The paper truncates complete user sequences at every cold item; at
/// its scale (45k-item catalogues) that is safe, but at this
/// reproduction's scale an ID model can simply *memorise* the few
/// training transitions into a 5-core-floor item, inverting the
/// comparison. Cases are therefore restricted to the held-out
/// positions (the final two interactions, never seen in training), so
/// the table measures cold-item generalisation rather than train-set
/// recall.
pub fn cold_start_cases(split: &SplitDataset, threshold: usize) -> Vec<ColdStartCase> {
    let cold: std::collections::HashSet<usize> =
        cold_items(split, threshold).into_iter().collect();
    let mut cases = Vec::new();
    for s in &split.dataset.sequences {
        for (pos, &item) in s.iter().enumerate() {
            if pos == 0 || pos + 2 < s.len() || !cold.contains(&item) {
                continue;
            }
            cases.push(ColdStartCase {
                prefix: s[..pos].to_vec(),
                target: item,
            });
        }
    }
    cases
}

/// A strict cold-start benchmark: the cold items are removed from the
/// training sequences entirely, so ID models have *no* signal for them
/// (their embeddings stay at initialisation) while content models can
/// still read their text and image at scoring time — the "new items
/// arriving on the platform" scenario the paper's Section IV-F2
/// approximates with a low-occurrence threshold at 45k-item scale.
///
/// Returns the modified training sequences and the evaluation cases
/// (held-out positions whose target is cold).
pub fn cold_holdout(
    split: &SplitDataset,
    threshold: usize,
) -> (Vec<Vec<usize>>, Vec<ColdStartCase>) {
    let cold: std::collections::HashSet<usize> =
        cold_items(split, threshold).into_iter().collect();
    let train: Vec<Vec<usize>> = split
        .train
        .iter()
        .map(|s| s.iter().copied().filter(|i| !cold.contains(i)).collect::<Vec<_>>())
        .filter(|s: &Vec<usize>| s.len() >= 2)
        .collect();
    let cases = cold_start_cases(split, threshold);
    (train, cases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::style::Platform;
    use crate::world::{World, WorldConfig};

    fn split(seqs: Vec<Vec<usize>>, n_items: usize) -> SplitDataset {
        let world = World::new(WorldConfig::default());
        let style = Platform::Hm.style();
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        let items = (0..n_items).map(|_| world.sample_item(3, &style, &mut rng)).collect();
        SplitDataset::new(Dataset {
            name: "t".into(),
            platform: Platform::Hm,
            content: crate::dataset::ContentSpec::from_world(&world.cfg),
            items,
            sequences: seqs,
        })
    }

    #[test]
    fn cold_items_are_rare_in_train() {
        // Sequences of length 5 -> train drops last two. Item 9 appears
        // only in a held-out slot, so it has zero train occurrences.
        let s = split(vec![vec![0, 0, 0, 1, 9], vec![0, 1, 0, 0, 1]], 10);
        let cold = cold_items(&s, 2);
        assert!(cold.contains(&9));
        assert!(!cold.contains(&0));
    }

    #[test]
    fn cases_end_in_cold_items_with_nonempty_prefix() {
        // Item 9 occurs at a held-out position (index 3 of 5) for user
        // 1 only; user 0's occurrence (index 2) is a training slot and
        // user 2's is at position 0.
        let s = split(vec![vec![0, 0, 9, 0, 0], vec![0, 0, 0, 9, 0], vec![9, 0, 0, 0, 0]], 10);
        let cases = cold_start_cases(&s, 4);
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].target, 9);
        assert_eq!(cases[0].prefix, vec![0, 0, 0]);
    }

    #[test]
    fn threshold_zero_yields_no_cases() {
        let s = split(vec![vec![0, 1, 2, 3, 4]], 5);
        assert!(cold_start_cases(&s, 0).is_empty());
    }

    #[test]
    fn cold_holdout_strips_cold_items_from_training() {
        let s = split(vec![vec![0, 0, 9, 0, 9], vec![0, 9, 0, 0, 0]], 10);
        // Item 9: train occurrences = 1 (user0 pos2) + 1 (user1 pos1) = 2.
        let (train, cases) = cold_holdout(&s, 3);
        for seq in &train {
            assert!(!seq.contains(&9), "cold item leaked into training: {seq:?}");
            assert!(seq.len() >= 2);
        }
        // User 0's held-out position 4 targets the cold item.
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].target, 9);
    }
}
