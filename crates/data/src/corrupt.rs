//! Sequence corruption for the NID and RCL objectives (Section III-D).
//!
//! Per the paper: shuffle 15% of the positions and replace an
//! additional 5% with random items, labelling every position as
//! unchanged / shuffled / replaced for the 3-way NID classifier.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// NID's 3-way per-position label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NidLabel {
    /// Item kept its original position.
    Unchanged = 0,
    /// Item was moved by the shuffle.
    Shuffled = 1,
    /// Item was replaced by a random item.
    Replaced = 2,
}

impl NidLabel {
    /// Class index for the cross-entropy head.
    pub fn class(self) -> usize {
        self as usize
    }
}

/// Corruption hyper-parameters (paper defaults).
#[derive(Debug, Clone, Copy)]
pub struct CorruptionConfig {
    /// Fraction of positions to shuffle.
    pub shuffle_rate: f32,
    /// Fraction of positions to replace with random items.
    pub replace_rate: f32,
}

impl Default for CorruptionConfig {
    fn default() -> Self {
        CorruptionConfig {
            shuffle_rate: 0.15,
            replace_rate: 0.05,
        }
    }
}

impl CorruptionConfig {
    /// Returns a copy with both rates forced into `[0, 1]` (NaN maps
    /// to 0) and, when their sum exceeds 1, scaled down proportionally
    /// so shuffling and replacement can still use disjoint position
    /// sets instead of replacement being silently starved.
    pub fn clamped(&self) -> CorruptionConfig {
        let sanitize = |r: f32| if r.is_finite() { r.clamp(0.0, 1.0) } else { 0.0 };
        let (mut shuffle, mut replace) = (sanitize(self.shuffle_rate), sanitize(self.replace_rate));
        let sum = shuffle + replace;
        if sum > 1.0 {
            shuffle /= sum;
            replace /= sum;
        }
        CorruptionConfig { shuffle_rate: shuffle, replace_rate: replace }
    }
}

/// Corrupts one sequence, returning the corrupted copy and per-position
/// labels. `item_pool` supplies replacement candidates (the paper draws
/// them from the batch; callers pass the batch's item set). Rates are
/// clamped via [`CorruptionConfig::clamped`], and sequences too short
/// to corrupt (empty or length 1 with nothing to replace) come back
/// unchanged rather than panicking.
pub fn corrupt_sequence(
    seq: &[usize],
    pool: &[usize],
    cfg: &CorruptionConfig,
    rng: &mut StdRng,
) -> (Vec<usize>, Vec<NidLabel>) {
    let cfg = cfg.clamped();
    let n = seq.len();
    let mut out = seq.to_vec();
    let mut labels = vec![NidLabel::Unchanged; n];
    if n == 0 {
        return (out, labels);
    }

    // Pick disjoint position sets for shuffling and replacement.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let n_shuffle = (((n as f32) * cfg.shuffle_rate).round() as usize).min(n);
    // At least two positions are needed for a meaningful shuffle; a
    // length-1 sequence cannot shuffle at all.
    let n_shuffle = match n_shuffle {
        1 => if n >= 2 { 2 } else { 0 },
        k => k,
    };
    let n_replace = (((n as f32) * cfg.replace_rate).ceil() as usize).min(n - n_shuffle);

    let shuffle_pos: Vec<usize> = order[..n_shuffle].to_vec();
    let replace_pos: Vec<usize> = order[n_shuffle..n_shuffle + n_replace].to_vec();

    // Shuffle: derange the chosen positions among themselves.
    if shuffle_pos.len() >= 2 {
        let values: Vec<usize> = shuffle_pos.iter().map(|&p| seq[p]).collect();
        let mut perm: Vec<usize> = (0..values.len()).collect();
        // Rotate by a random non-zero offset: a simple guaranteed
        // derangement of positions (items may still coincide if the
        // sequence repeats an item, which mirrors real logs).
        let offset = rng.random_range(1..values.len());
        perm.rotate_left(offset);
        for (slot, &src) in shuffle_pos.iter().zip(&perm) {
            out[*slot] = values[src];
            labels[*slot] = NidLabel::Shuffled;
        }
    }

    // Replace with random items from the pool.
    for &p in &replace_pos {
        if pool.is_empty() {
            break;
        }
        out[p] = pool[rng.random_range(0..pool.len())];
        labels[p] = NidLabel::Replaced;
    }

    (out, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn corruption_preserves_length_and_multiset_of_unreplaced() {
        let mut rng = StdRng::seed_from_u64(0);
        let seq: Vec<usize> = (0..20).collect();
        let pool: Vec<usize> = (100..120).collect();
        let (out, labels) = corrupt_sequence(&seq, &pool, &CorruptionConfig::default(), &mut rng);
        assert_eq!(out.len(), seq.len());
        assert_eq!(labels.len(), seq.len());
        // Unchanged positions hold their original item.
        for (i, l) in labels.iter().enumerate() {
            if *l == NidLabel::Unchanged {
                assert_eq!(out[i], seq[i]);
            }
        }
    }

    #[test]
    fn default_rates_approximate_paper_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let seq: Vec<usize> = (0..100).collect();
        let pool: Vec<usize> = (500..600).collect();
        let (_, labels) = corrupt_sequence(&seq, &pool, &CorruptionConfig::default(), &mut rng);
        let shuffled = labels.iter().filter(|&&l| l == NidLabel::Shuffled).count();
        let replaced = labels.iter().filter(|&&l| l == NidLabel::Replaced).count();
        assert_eq!(shuffled, 15);
        assert_eq!(replaced, 5);
    }

    #[test]
    fn shuffled_positions_actually_move() {
        let mut rng = StdRng::seed_from_u64(2);
        let seq: Vec<usize> = (0..40).collect(); // all distinct
        let (out, labels) = corrupt_sequence(&seq, &[999], &CorruptionConfig::default(), &mut rng);
        let moved = labels
            .iter()
            .enumerate()
            .filter(|(i, &l)| l == NidLabel::Shuffled && out[*i] != seq[*i])
            .count();
        let shuffled = labels.iter().filter(|&&l| l == NidLabel::Shuffled).count();
        assert_eq!(moved, shuffled, "rotation must displace all shuffled positions");
    }

    #[test]
    fn replaced_items_come_from_pool() {
        let mut rng = StdRng::seed_from_u64(3);
        let seq: Vec<usize> = (0..50).collect();
        let pool = vec![777usize];
        let (out, labels) = corrupt_sequence(&seq, &pool, &CorruptionConfig::default(), &mut rng);
        for (i, &l) in labels.iter().enumerate() {
            if l == NidLabel::Replaced {
                assert_eq!(out[i], 777);
            }
        }
    }

    #[test]
    fn tiny_sequences_do_not_panic() {
        let mut rng = StdRng::seed_from_u64(4);
        for n in 0..4 {
            let seq: Vec<usize> = (0..n).collect();
            let (out, labels) =
                corrupt_sequence(&seq, &[5, 6], &CorruptionConfig::default(), &mut rng);
            assert_eq!(out.len(), n);
            assert_eq!(labels.len(), n);
        }
    }

    #[test]
    fn clamped_normalizes_oversubscribed_rates() {
        let cfg = CorruptionConfig { shuffle_rate: 0.9, replace_rate: 0.6 }.clamped();
        assert!((cfg.shuffle_rate + cfg.replace_rate - 1.0).abs() < 1e-6);
        assert!((cfg.shuffle_rate - 0.6).abs() < 1e-6);
        // Proportions are preserved: 0.9 : 0.6 == cfg.shuffle : cfg.replace.
        assert!((cfg.shuffle_rate / cfg.replace_rate - 1.5).abs() < 1e-6);
        // In-range configs pass through untouched.
        let ok = CorruptionConfig::default().clamped();
        assert_eq!(ok.shuffle_rate, 0.15);
        assert_eq!(ok.replace_rate, 0.05);
    }

    #[test]
    fn clamped_sanitizes_pathological_rates() {
        let cfg = CorruptionConfig { shuffle_rate: -0.5, replace_rate: f32::NAN }.clamped();
        assert_eq!(cfg.shuffle_rate, 0.0);
        assert_eq!(cfg.replace_rate, 0.0);
        let cfg = CorruptionConfig { shuffle_rate: f32::INFINITY, replace_rate: 2.0 }.clamped();
        assert!(cfg.shuffle_rate >= 0.0 && cfg.shuffle_rate <= 1.0);
        assert!(cfg.shuffle_rate + cfg.replace_rate <= 1.0 + 1e-6);
    }

    #[test]
    fn oversubscribed_rates_still_corrupt_without_panicking() {
        let mut rng = StdRng::seed_from_u64(5);
        let seq: Vec<usize> = (0..20).collect();
        let cfg = CorruptionConfig { shuffle_rate: 1.0, replace_rate: 1.0 };
        let (out, labels) = corrupt_sequence(&seq, &[99], &cfg, &mut rng);
        assert_eq!(out.len(), 20);
        // Both corruption kinds got a share of the positions.
        assert!(labels.contains(&NidLabel::Shuffled));
        assert!(labels.contains(&NidLabel::Replaced));
    }

    #[test]
    fn length_one_sequences_replace_but_never_shuffle() {
        let mut rng = StdRng::seed_from_u64(6);
        // Force a rate that would round the shuffle count to 1.
        let cfg = CorruptionConfig { shuffle_rate: 0.6, replace_rate: 0.9 };
        for _ in 0..20 {
            let (out, labels) = corrupt_sequence(&[7], &[42], &cfg, &mut rng);
            assert_eq!(out.len(), 1);
            assert_ne!(labels[0], NidLabel::Shuffled, "length-1 cannot shuffle");
            if labels[0] == NidLabel::Replaced {
                assert_eq!(out[0], 42);
            }
        }
    }
}
