//! The shared latent world: categories, the universal transition
//! matrix, and multi-modal item content generation.

use crate::style::StyleProfile;
#[cfg(test)]
use crate::style::Platform;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Human-readable names of the five semantic categories.
pub const CATEGORY_NAMES: [&str; 5] = ["food", "movie", "cartoon", "clothes", "shoes"];

/// Tokens reserved at the bottom of the vocabulary.
pub const PAD_TOKEN: usize = 0;
/// Reserved CLS id (item encoders prepend their own CLS embedding; this
/// id simply stays unused inside item text).
pub const CLS_TOKEN: usize = 1;
const RESERVED: usize = 2;
const CAT_TOKENS: usize = 4;
const BUCKETS: usize = 4;
const NOISE_TOKENS: usize = 32;

/// Static configuration of the generative world.
#[derive(Debug, Clone, Copy)]
pub struct WorldConfig {
    /// Latent semantic dimensionality.
    pub latent_dim: usize,
    /// Number of semantic categories (5 in the paper mirror).
    pub n_categories: usize,
    /// Tokens of item text (excluding the encoder-side CLS).
    pub text_len: usize,
    /// Number of image patches per item.
    pub n_patches: usize,
    /// Raw dimensionality of one image patch.
    pub patch_dim: usize,
    /// World seed: category centroids, projections and the transition
    /// matrix are all deterministic functions of it.
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            latent_dim: 12,
            n_categories: CATEGORY_NAMES.len(),
            text_len: 12,
            n_patches: 8,
            patch_dim: 12,
            seed: 1234,
        }
    }
}

impl WorldConfig {
    /// Total text vocabulary size implied by the config.
    pub fn vocab(&self) -> usize {
        RESERVED + self.n_categories * CAT_TOKENS + self.latent_dim * BUCKETS + NOISE_TOKENS
    }

    fn cat_token_base(&self) -> usize {
        RESERVED
    }

    fn descr_token_base(&self) -> usize {
        RESERVED + self.n_categories * CAT_TOKENS
    }

    fn noise_token_base(&self) -> usize {
        self.descr_token_base() + self.latent_dim * BUCKETS
    }
}

/// One generated item: its ground-truth latent plus the two observable
/// modalities. Item IDs are positions in a per-dataset corpus and carry
/// no cross-dataset meaning.
#[derive(Debug, Clone)]
pub struct Item {
    /// Ground-truth semantic category.
    pub category: usize,
    /// Ground-truth latent vector (unit norm) — used only by the
    /// generator and by tests, never by models.
    pub latent: Vec<f32>,
    /// Text modality: `text_len` token ids.
    pub tokens: Vec<usize>,
    /// Vision modality: `n_patches * patch_dim` flat patch values.
    pub patches: Vec<f32>,
    /// Whether the image was generated from a mismatched latent (noise
    /// injected per the platform profile) — ground truth for analyses.
    pub mismatched: bool,
}

/// The world: deterministic global structures shared by every platform.
pub struct World {
    /// The configuration the world was built from.
    pub cfg: WorldConfig,
    /// `[K, m]` category centroids (unit norm).
    category_latents: Vec<Vec<f32>>,
    /// Per-patch projection matrices `[q][patch_dim * m]`.
    patch_proj: Vec<Vec<f32>>,
    /// `[K, K]` row-stochastic universal transition matrix.
    transitions: Vec<Vec<f32>>,
    /// `[m, m]` latent transition field: users tend to move from an
    /// item with latent `u` towards items whose latent aligns with
    /// `T(u)`. Like the category matrix, `T` is a *global* structure —
    /// the item-level half of Figure 1's universal transition patterns.
    latent_field: Vec<f32>,
}

impl World {
    /// Builds the world deterministically from `cfg.seed`.
    pub fn new(cfg: WorldConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let m = cfg.latent_dim;
        let category_latents: Vec<Vec<f32>> = (0..cfg.n_categories)
            .map(|_| {
                let mut v: Vec<f32> = (0..m).map(|_| sample_gauss(&mut rng)).collect();
                normalize(&mut v);
                v
            })
            .collect();
        let patch_proj: Vec<Vec<f32>> = (0..cfg.n_patches)
            .map(|_| {
                (0..cfg.patch_dim * m)
                    .map(|_| sample_gauss(&mut rng) / (m as f32).sqrt())
                    .collect()
            })
            .collect();
        // Universal transition pattern: strong self-continuation, a
        // preferred "next" category, thin uniform background. This is
        // the Figure-1 structure every platform shares.
        let k = cfg.n_categories;
        let mut transitions = vec![vec![0.0f32; k]; k];
        for (i, row) in transitions.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = if j == i {
                    0.50
                } else if j == (i + 1) % k {
                    0.30
                } else {
                    0.20 / (k - 2) as f32
                };
            }
        }
        // Latent transition field T = 0.5 I + 0.9 Q with random Q:
        // enough identity for continuity, enough rotation that the
        // field must be *learned* rather than assumed.
        let mut latent_field = vec![0.0f32; m * m];
        for i in 0..m {
            for j in 0..m {
                latent_field[i * m + j] =
                    0.9 * sample_gauss(&mut rng) / (m as f32).sqrt() + if i == j { 0.5 } else { 0.0 };
            }
        }
        World {
            cfg,
            category_latents,
            patch_proj,
            transitions,
            latent_field,
        }
    }

    /// Applies the global latent transition field: the direction in
    /// latent space a user is drawn towards after consuming an item
    /// with latent `u` (unit-normalised output).
    pub fn latent_drift(&self, u: &[f32]) -> Vec<f32> {
        let m = self.cfg.latent_dim;
        debug_assert_eq!(u.len(), m, "latent_drift: dimension mismatch");
        let mut out = vec![0.0f32; m];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.latent_field[i * m..(i + 1) * m];
            *o = row.iter().zip(u).map(|(&f, &x)| f * x).sum();
        }
        normalize(&mut out);
        out
    }

    /// The `[K, K]` universal transition matrix (row-stochastic).
    pub fn transitions(&self) -> &[Vec<f32>] {
        &self.transitions
    }

    /// Centroid of category `c`.
    pub fn category_latent(&self, c: usize) -> &[f32] {
        &self.category_latents[c]
    }

    /// Samples one item of category `c` with platform style applied.
    pub fn sample_item(&self, c: usize, style: &StyleProfile, rng: &mut StdRng) -> Item {
        let m = self.cfg.latent_dim;
        // Latent: centroid plus item-level variation, renormalised.
        let mut latent: Vec<f32> = self.category_latents[c]
            .iter()
            .map(|&z| z + 0.45 * sample_gauss(rng))
            .collect();
        normalize(&mut latent);

        let tokens = self.sample_text(c, &latent, style, rng);
        let mismatched = rng.random::<f32>() < style.mismatch_rate;
        let image_latent: Vec<f32> = if mismatched {
            // Mismatch: image comes from a different random category.
            let other = rng.random_range(0..self.cfg.n_categories);
            let mut v: Vec<f32> = self.category_latents[other]
                .iter()
                .map(|&z| z + 0.45 * sample_gauss(rng))
                .collect();
            normalize(&mut v);
            v
        } else {
            latent.clone()
        };
        let patches = self.sample_image(&image_latent, style, rng);
        let _ = m;
        Item {
            category: c,
            latent,
            tokens,
            patches,
            mismatched,
        }
    }

    /// Text: two category-marker tokens plus descriptor tokens that
    /// bucketise the largest-magnitude latent coordinates; platform
    /// noise replaces tokens with junk.
    fn sample_text(
        &self,
        c: usize,
        latent: &[f32],
        style: &StyleProfile,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        let cfg = &self.cfg;
        let mut tokens = Vec::with_capacity(cfg.text_len);
        // Category markers (synonymous variants, like real tag phrases).
        for _ in 0..2usize.min(cfg.text_len) {
            tokens.push(cfg.cat_token_base() + c * CAT_TOKENS + rng.random_range(0..CAT_TOKENS));
        }
        // Descriptors: top coordinates by magnitude, bucketed.
        let mut order: Vec<usize> = (0..cfg.latent_dim).collect();
        order.sort_by(|&a, &b| latent[b].abs().total_cmp(&latent[a].abs()));
        for &dim in order.iter().take(cfg.text_len.saturating_sub(tokens.len())) {
            let v = latent[dim];
            let bucket = match v {
                v if v <= -0.25 => 0,
                v if v < 0.0 => 1,
                v if v < 0.25 => 2,
                _ => 3,
            };
            tokens.push(cfg.descr_token_base() + dim * BUCKETS + bucket);
        }
        // Platform text noise.
        for t in tokens.iter_mut() {
            if rng.random::<f32>() < style.text_noise_rate {
                *t = cfg.noise_token_base() + rng.random_range(0..NOISE_TOKENS);
            }
        }
        tokens
    }

    /// Image: per-patch projection of the latent plus a deterministic
    /// platform style shift, gaussian noise, and clutter patches.
    fn sample_image(&self, latent: &[f32], style: &StyleProfile, rng: &mut StdRng) -> Vec<f32> {
        let cfg = &self.cfg;
        let (q, dv, m) = (cfg.n_patches, cfg.patch_dim, cfg.latent_dim);
        let mut style_rng = StdRng::seed_from_u64(cfg.seed ^ style.style_shift_seed);
        let mut out = Vec::with_capacity(q * dv);
        for (k, proj) in self.patch_proj.iter().enumerate() {
            let cluttered = rng.random::<f32>() < style.clutter_rate;
            for r in 0..dv {
                // Deterministic per-(platform, patch, row) style offset.
                let shift = 0.5 * sample_gauss(&mut style_rng);
                let v = if cluttered {
                    shift + style.visual_noise * sample_gauss(rng)
                } else {
                    let mut acc = 0.0f32;
                    for (j, &l) in latent.iter().enumerate() {
                        acc += proj[r * m + j] * l;
                    }
                    acc + shift + style.visual_noise * 0.3 * sample_gauss(rng)
                };
                out.push(v);
            }
            let _ = k;
        }
        out
    }

    /// Samples the next category given the current one and a user
    /// preference distribution over categories (restricted support).
    pub fn next_category(&self, current: usize, pref: &[f32], rng: &mut StdRng) -> usize {
        let row = &self.transitions[current];
        let weights: Vec<f32> = row.iter().zip(pref).map(|(&t, &p)| t * p).collect();
        sample_categorical(&weights, rng)
    }
}

/// Draws from an unnormalised categorical distribution; falls back to
/// uniform if all weights vanish.
pub fn sample_categorical(weights: &[f32], rng: &mut StdRng) -> usize {
    let total: f32 = weights.iter().sum();
    if total <= 0.0 {
        return rng.random_range(0..weights.len());
    }
    let mut u = rng.random::<f32>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

fn sample_gauss(rng: &mut StdRng) -> f32 {
    // Box–Muller (one sample; the discarded pair keeps code simple).
    let u1: f32 = rng.random::<f32>().max(1e-12);
    let u2: f32 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

fn normalize(v: &mut [f32]) {
    let n = v.iter().map(|&x| x * x).sum::<f32>().sqrt().max(1e-8);
    v.iter_mut().for_each(|x| *x /= n);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::new(WorldConfig::default())
    }

    #[test]
    fn world_is_seed_deterministic() {
        let a = world();
        let b = world();
        assert_eq!(a.category_latent(0), b.category_latent(0));
        assert_eq!(a.transitions()[2], b.transitions()[2]);
    }

    #[test]
    fn transition_rows_are_stochastic() {
        let w = world();
        for row in w.transitions() {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row sums to {s}");
            assert!(row.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn item_latents_are_unit_norm_and_near_centroid() {
        let w = world();
        let style = Platform::Hm.style();
        let mut rng = StdRng::seed_from_u64(0);
        let mut mean_dot = 0.0f32;
        for _ in 0..50 {
            let item = w.sample_item(3, &style, &mut rng);
            let n: f32 = item.latent.iter().map(|&x| x * x).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4);
            let dot: f32 = item
                .latent
                .iter()
                .zip(w.category_latent(3))
                .map(|(&a, &b)| a * b)
                .sum();
            mean_dot += dot / 50.0;
        }
        assert!(mean_dot > 0.5, "items drifted too far from their category: {mean_dot}");
    }

    #[test]
    fn text_tokens_are_in_vocab_and_identify_category() {
        let w = world();
        let style = Platform::Hm.style(); // low text noise
        let mut rng = StdRng::seed_from_u64(1);
        let vocab = w.cfg.vocab();
        let mut cat_hits = 0;
        for _ in 0..100 {
            let item = w.sample_item(1, &style, &mut rng);
            assert_eq!(item.tokens.len(), w.cfg.text_len);
            assert!(item.tokens.iter().all(|&t| t < vocab));
            let base = w.cfg.cat_token_base() + CAT_TOKENS;
            if item.tokens.iter().any(|&t| (base..base + CAT_TOKENS).contains(&t)) {
                cat_hits += 1;
            }
        }
        assert!(cat_hits > 80, "category markers mostly survive clean platforms: {cat_hits}");
    }

    #[test]
    fn noisy_platform_produces_more_mismatches() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(2);
        let count = |style: &StyleProfile, rng: &mut StdRng| {
            (0..400)
                .filter(|_| w.sample_item(0, style, rng).mismatched)
                .count()
        };
        let kwai = count(&Platform::Kwai.style(), &mut rng);
        let hm = count(&Platform::Hm.style(), &mut rng);
        assert!(kwai > hm, "kwai {kwai} vs hm {hm}");
    }

    #[test]
    fn image_patches_carry_category_signal_on_clean_platforms() {
        // Average patch vectors of two categories should differ more
        // than within-category repetitions.
        let w = world();
        let style = Platform::Hm.style();
        let mut rng = StdRng::seed_from_u64(3);
        let avg = |c: usize, rng: &mut StdRng| {
            let mut acc = vec![0.0f32; w.cfg.n_patches * w.cfg.patch_dim];
            for _ in 0..40 {
                let item = w.sample_item(c, &style, rng);
                for (a, &p) in acc.iter_mut().zip(&item.patches) {
                    *a += p / 40.0;
                }
            }
            acc
        };
        let a1 = avg(3, &mut rng);
        let a2 = avg(3, &mut rng);
        let b = avg(4, &mut rng);
        let dist = |x: &[f32], y: &[f32]| {
            x.iter().zip(y).map(|(&a, &b)| (a - b) * (a - b)).sum::<f32>()
        };
        assert!(dist(&a1, &b) > 2.0 * dist(&a1, &a2), "categories not separable in image space");
    }

    #[test]
    fn sample_categorical_respects_weights() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[sample_categorical(&[0.1, 0.8, 0.1], &mut rng)] += 1;
        }
        assert!(counts[1] > 2000, "{counts:?}");
    }

    #[test]
    fn sample_categorical_handles_zero_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let i = sample_categorical(&[0.0, 0.0], &mut rng);
        assert!(i < 2);
    }

    #[test]
    fn vocab_accounts_for_all_token_regions() {
        let cfg = WorldConfig::default();
        assert_eq!(
            cfg.vocab(),
            2 + cfg.n_categories * 4 + cfg.latent_dim * 4 + 32
        );
    }
}
