//! Datasets: item corpus + user sequences, preprocessing (5-core
//! filtering), fused-source merging and Table-II style statistics.

use crate::style::Platform;
use crate::world::{Item, WorldConfig};
use std::collections::HashMap;

/// Content geometry shared by every dataset generated from one world.
///
/// Models size their embedding tables and patch projections from this,
/// so it must be identical between pre-training and fine-tuning corpora
/// for checkpoints to be interchangeable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentSpec {
    /// Text vocabulary size.
    pub vocab: usize,
    /// Tokens per item text.
    pub text_len: usize,
    /// Patches per item image.
    pub n_patches: usize,
    /// Raw dimensionality of one patch.
    pub patch_dim: usize,
}

impl ContentSpec {
    /// Derives the spec from a world configuration.
    pub fn from_world(cfg: &WorldConfig) -> ContentSpec {
        ContentSpec {
            vocab: cfg.vocab(),
            text_len: cfg.text_len,
            n_patches: cfg.n_patches,
            patch_dim: cfg.patch_dim,
        }
    }
}

/// A preprocessed interaction dataset.
#[derive(Clone)]
pub struct Dataset {
    /// Display name (matching the paper's tables, e.g. `Bili_Food`).
    pub name: String,
    /// Originating platform (fused datasets report the first).
    pub platform: Platform,
    /// Content geometry of the generating world.
    pub content: ContentSpec,
    /// Item corpus; sequence entries index into this.
    pub items: Vec<Item>,
    /// User interaction sequences (chronological item indices).
    pub sequences: Vec<Vec<usize>>,
}

/// Table-II style statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of users after preprocessing.
    pub users: usize,
    /// Number of distinct interacted items.
    pub items: usize,
    /// Total interactions.
    pub actions: usize,
    /// Mean sequence length.
    pub avg_length: f32,
    /// `1 - actions / (users * items)`.
    pub sparsity: f32,
}

impl Dataset {
    /// Applies the paper's preprocessing: iteratively drop users with
    /// fewer than `min_interactions` interactions and items with fewer
    /// than `min_interactions` occurrences (5-core filtering), then
    /// compact item ids. Content is preserved for surviving items.
    pub fn five_core(mut self, min_interactions: usize) -> Dataset {
        loop {
            let mut item_counts: HashMap<usize, usize> = HashMap::new();
            for s in &self.sequences {
                for &i in s {
                    *item_counts.entry(i).or_default() += 1;
                }
            }
            let bad_item = |i: usize| item_counts.get(&i).copied().unwrap_or(0) < min_interactions;

            let mut changed = false;
            // Drop cold items from sequences.
            for s in self.sequences.iter_mut() {
                let before = s.len();
                s.retain(|&i| !bad_item(i));
                changed |= s.len() != before;
            }
            // Drop short users.
            let before_users = self.sequences.len();
            self.sequences.retain(|s| s.len() >= min_interactions);
            changed |= self.sequences.len() != before_users;
            if !changed {
                break;
            }
        }
        self.compact_items();
        self
    }

    /// Reindexes items so only interacted items remain, ids dense.
    fn compact_items(&mut self) {
        let mut used: Vec<bool> = vec![false; self.items.len()];
        for s in &self.sequences {
            for &i in s {
                used[i] = true;
            }
        }
        let mut remap: Vec<usize> = vec![usize::MAX; self.items.len()];
        let mut new_items = Vec::new();
        for (i, item) in self.items.iter().enumerate() {
            if used[i] {
                remap[i] = new_items.len();
                new_items.push(item.clone());
            }
        }
        for s in self.sequences.iter_mut() {
            for i in s.iter_mut() {
                *i = remap[*i];
            }
        }
        self.items = new_items;
    }

    /// Concatenates several datasets into one fused corpus with offset
    /// item ids (the pre-training "fused 4 source datasets").
    #[track_caller]
    pub fn fuse(name: &str, parts: &[Dataset]) -> Dataset {
        assert!(!parts.is_empty(), "fuse: need at least one dataset");
        let mut items = Vec::new();
        let mut sequences = Vec::new();
        for part in parts {
            assert_eq!(
                part.content, parts[0].content,
                "fuse: datasets come from incompatible worlds"
            );
            let offset = items.len();
            items.extend(part.items.iter().cloned());
            sequences.extend(
                part.sequences
                    .iter()
                    .map(|s| s.iter().map(|&i| i + offset).collect::<Vec<_>>()),
            );
        }
        Dataset {
            name: name.to_string(),
            platform: parts[0].platform,
            content: parts[0].content,
            items,
            sequences,
        }
    }

    /// Computes Table-II style statistics.
    pub fn stats(&self) -> DatasetStats {
        let users = self.sequences.len();
        let actions: usize = self.sequences.iter().map(Vec::len).sum();
        let items = self.items.len();
        let avg_length = if users == 0 { 0.0 } else { actions as f32 / users as f32 };
        let sparsity = if users == 0 || items == 0 {
            1.0
        } else {
            1.0 - actions as f32 / (users as f32 * items as f32)
        };
        DatasetStats {
            users,
            items,
            actions,
            avg_length,
            sparsity,
        }
    }

    /// Maximum sequence length present.
    pub fn max_len(&self) -> usize {
        self.sequences.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldConfig};

    fn toy(seqs: Vec<Vec<usize>>, n_items: usize) -> Dataset {
        let world = World::new(WorldConfig::default());
        let style = Platform::Hm.style();
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        let items = (0..n_items)
            .map(|i| world.sample_item(3 + i % 2, &style, &mut rng))
            .collect();
        Dataset {
            name: "toy".into(),
            platform: Platform::Hm,
            content: ContentSpec::from_world(&world.cfg),
            items,
            sequences: seqs,
        }
    }

    #[test]
    fn five_core_drops_rare_items_and_short_users() {
        // Item 9 appears once; user 2 is too short after filtering.
        let ds = toy(
            vec![
                vec![0, 1, 2, 0, 1, 2],
                vec![0, 1, 2, 0, 1, 2, 0, 1, 2],
                vec![9, 0, 1],
                vec![0, 1, 2, 1, 0, 2],
            ],
            10,
        );
        let filtered = ds.five_core(5);
        assert!(filtered.sequences.iter().all(|s| s.len() >= 5));
        // Only items 0,1,2 survive, compacted to 0..3.
        assert_eq!(filtered.items.len(), 3);
        for s in &filtered.sequences {
            assert!(s.iter().all(|&i| i < 3));
        }
    }

    #[test]
    fn five_core_is_iterative() {
        // Dropping a user can push an item below threshold, which then
        // shortens another user below threshold.
        let ds = toy(
            vec![
                vec![0, 0, 1, 1, 2], // user A
                vec![2, 2, 2, 3, 3], // user B: item 3 appears twice here only
                vec![3, 4, 4, 4, 4], // user C
            ],
            5,
        );
        let filtered = ds.five_core(3);
        // All sequences must satisfy the invariant simultaneously.
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for s in &filtered.sequences {
            assert!(s.len() >= 3);
            for &i in s {
                *counts.entry(i).or_default() += 1;
            }
        }
        assert!(counts.values().all(|&c| c >= 3), "{counts:?}");
    }

    #[test]
    fn compact_preserves_item_content() {
        let ds = toy(vec![vec![2, 2, 2, 2, 2, 3, 3, 3, 3, 3]], 5);
        let orig_cat2 = ds.items[2].category;
        let filtered = ds.five_core(5);
        assert_eq!(filtered.items.len(), 2);
        assert_eq!(filtered.items[0].category, orig_cat2);
    }

    #[test]
    fn fuse_offsets_item_ids() {
        let a = toy(vec![vec![0, 1]], 2);
        let b = toy(vec![vec![0, 1]], 2);
        let fused = Dataset::fuse("fused", &[a, b]);
        assert_eq!(fused.items.len(), 4);
        assert_eq!(fused.sequences, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn stats_match_hand_computation() {
        let ds = toy(vec![vec![0, 1, 0], vec![1, 1, 1, 1, 1]], 2);
        let st = ds.stats();
        assert_eq!(st.users, 2);
        assert_eq!(st.actions, 8);
        assert_eq!(st.items, 2);
        assert!((st.avg_length - 4.0).abs() < 1e-6);
        assert!((st.sparsity - (1.0 - 8.0 / 4.0)).abs() < 1e-6);
    }
}
