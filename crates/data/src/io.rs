//! Dataset persistence and external-data ingestion.
//!
//! * [`save_dataset`] / [`load_dataset`] — a self-contained binary
//!   format so generated corpora can be archived and shared (the
//!   synthetic analogue of publishing the preprocessed datasets, as the
//!   paper does).
//! * [`DatasetBuilder`] — constructs a [`Dataset`] from *external*
//!   interaction logs and item content (pre-tokenised text + patch
//!   features), the adoption path for using this library on real data.

use crate::dataset::{ContentSpec, Dataset};
use crate::style::Platform;
use crate::world::Item;
use pmm_obs::obs_warn;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Opens a file via `op` with bounded retry/backoff (and fault-plan
/// awareness), counting retries in `pmm-obs`.
fn open_with_retry(
    what: &str,
    path: &Path,
    mut op: impl FnMut() -> io::Result<File>,
) -> io::Result<File> {
    pmm_fault::with_io_retry_notify(
        &format!("{what} {}", path.display()),
        &mut op,
        |attempt, e| {
            pmm_obs::counter::IO_RETRIES.add(1);
            pmm_obs::sink::emit_guard("io_retry", u64::from(attempt), &e.to_string());
            obs_warn!("data_io", "{what} {} failed (attempt {}): {e}; retrying", path.display(), attempt + 1);
        },
    )
}

const MAGIC: &[u8; 8] = b"PMMDATA1";

/// Errors from the dataset codec and builder.
#[derive(Debug)]
pub enum DataError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a PMMDATA1 file or corrupt.
    Format(String),
    /// Builder input violates the content spec.
    Invalid(String),
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "dataset io error: {e}"),
            DataError::Format(m) => write!(f, "dataset format error: {m}"),
            DataError::Invalid(m) => write!(f, "invalid dataset input: {m}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<io::Error> for DataError {
    fn from(e: io::Error) -> Self {
        DataError::Io(e)
    }
}

fn platform_tag(p: Platform) -> u8 {
    match p {
        Platform::Bili => 0,
        Platform::Kwai => 1,
        Platform::Hm => 2,
        Platform::Amazon => 3,
    }
}

fn platform_from(tag: u8) -> Result<Platform, DataError> {
    Ok(match tag {
        0 => Platform::Bili,
        1 => Platform::Kwai,
        2 => Platform::Hm,
        3 => Platform::Amazon,
        other => return Err(DataError::Format(format!("unknown platform tag {other}"))),
    })
}

/// Serialises a dataset (items with full content + sequences).
pub fn save_dataset(ds: &Dataset, path: impl AsRef<Path>) -> Result<(), DataError> {
    let path = path.as_ref();
    let mut w = BufWriter::new(open_with_retry("create dataset", path, || File::create(path))?);
    w.write_all(MAGIC)?;
    write_str(&mut w, &ds.name)?;
    w.write_all(&[platform_tag(ds.platform)])?;
    for v in [
        ds.content.vocab,
        ds.content.text_len,
        ds.content.n_patches,
        ds.content.patch_dim,
    ] {
        write_u64(&mut w, v as u64)?;
    }
    write_u64(&mut w, ds.items.len() as u64)?;
    for item in &ds.items {
        write_u64(&mut w, item.category as u64)?;
        write_f32s(&mut w, &item.latent)?;
        write_u64(&mut w, item.tokens.len() as u64)?;
        for &t in &item.tokens {
            write_u64(&mut w, t as u64)?;
        }
        write_f32s(&mut w, &item.patches)?;
        w.write_all(&[u8::from(item.mismatched)])?;
    }
    write_u64(&mut w, ds.sequences.len() as u64)?;
    for s in &ds.sequences {
        write_u64(&mut w, s.len() as u64)?;
        for &i in s {
            write_u64(&mut w, i as u64)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Loads a dataset saved by [`save_dataset`].
pub fn load_dataset(path: impl AsRef<Path>) -> Result<Dataset, DataError> {
    let path = path.as_ref();
    let mut r = BufReader::new(open_with_retry("open dataset", path, || File::open(path))?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(DataError::Format("bad magic".into()));
    }
    let name = read_str(&mut r)?;
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let platform = platform_from(tag[0])?;
    let content = ContentSpec {
        vocab: read_u64(&mut r)? as usize,
        text_len: read_u64(&mut r)? as usize,
        n_patches: read_u64(&mut r)? as usize,
        patch_dim: read_u64(&mut r)? as usize,
    };
    let n_items = read_u64(&mut r)? as usize;
    if n_items > 1 << 24 {
        return Err(DataError::Format("implausible item count".into()));
    }
    let mut items = Vec::with_capacity(n_items);
    for _ in 0..n_items {
        let category = read_u64(&mut r)? as usize;
        let latent = read_f32s(&mut r)?;
        let n_tok = read_u64(&mut r)? as usize;
        if n_tok > 1 << 16 {
            return Err(DataError::Format("implausible token count".into()));
        }
        let mut tokens = Vec::with_capacity(n_tok);
        for _ in 0..n_tok {
            tokens.push(read_u64(&mut r)? as usize);
        }
        let patches = read_f32s(&mut r)?;
        let mut flag = [0u8; 1];
        r.read_exact(&mut flag)?;
        items.push(Item {
            category,
            latent,
            tokens,
            patches,
            mismatched: flag[0] != 0,
        });
    }
    let n_seq = read_u64(&mut r)? as usize;
    if n_seq > 1 << 24 {
        return Err(DataError::Format("implausible sequence count".into()));
    }
    let mut sequences = Vec::with_capacity(n_seq);
    for _ in 0..n_seq {
        let len = read_u64(&mut r)? as usize;
        if len > 1 << 20 {
            return Err(DataError::Format("implausible sequence length".into()));
        }
        let mut s = Vec::with_capacity(len);
        for _ in 0..len {
            let i = read_u64(&mut r)? as usize;
            if i >= items.len() {
                return Err(DataError::Format(format!("item id {i} out of range")));
            }
            s.push(i);
        }
        sequences.push(s);
    }
    Ok(Dataset {
        name,
        platform,
        content,
        items,
        sequences,
    })
}

/// Builds a [`Dataset`] from external interaction logs and item content.
///
/// External items carry no ground-truth latent (that field exists only
/// for the synthetic generator); it is stored as an empty vector and
/// never read by models.
pub struct DatasetBuilder {
    name: String,
    platform: Platform,
    content: ContentSpec,
    items: Vec<Item>,
    sequences: Vec<Vec<usize>>,
}

impl DatasetBuilder {
    /// Starts a builder with the content geometry models will be sized
    /// from.
    pub fn new(name: impl Into<String>, platform: Platform, content: ContentSpec) -> Self {
        DatasetBuilder {
            name: name.into(),
            platform,
            content,
            items: Vec::new(),
            sequences: Vec::new(),
        }
    }

    /// Adds an item from pre-tokenised text and flat patch features;
    /// returns its id. Text shorter than `text_len` is padded with the
    /// PAD token; longer text is an error (tokenise upstream).
    pub fn add_item(&mut self, tokens: &[usize], patches: &[f32]) -> Result<usize, DataError> {
        if tokens.len() > self.content.text_len {
            return Err(DataError::Invalid(format!(
                "item text has {} tokens, spec allows {}",
                tokens.len(),
                self.content.text_len
            )));
        }
        if let Some(&bad) = tokens.iter().find(|&&t| t >= self.content.vocab) {
            return Err(DataError::Invalid(format!(
                "token {bad} out of vocabulary {}",
                self.content.vocab
            )));
        }
        let expected = self.content.n_patches * self.content.patch_dim;
        if patches.len() != expected {
            return Err(DataError::Invalid(format!(
                "item has {} patch values, spec requires {expected}",
                patches.len()
            )));
        }
        let mut padded = tokens.to_vec();
        padded.resize(self.content.text_len, crate::world::PAD_TOKEN);
        self.items.push(Item {
            category: 0,
            latent: Vec::new(),
            tokens: padded,
            patches: patches.to_vec(),
            mismatched: false,
        });
        Ok(self.items.len() - 1)
    }

    /// Adds a chronological interaction sequence of item ids.
    pub fn add_sequence(&mut self, items: &[usize]) -> Result<(), DataError> {
        if let Some(&bad) = items.iter().find(|&&i| i >= self.items.len()) {
            return Err(DataError::Invalid(format!(
                "sequence references unknown item {bad}"
            )));
        }
        self.sequences.push(items.to_vec());
        Ok(())
    }

    /// Finalises the dataset (callers may still apply
    /// [`Dataset::five_core`] afterwards, as the paper does).
    pub fn build(self) -> Result<Dataset, DataError> {
        if self.items.is_empty() {
            return Err(DataError::Invalid("no items added".into()));
        }
        Ok(Dataset {
            name: self.name,
            platform: self.platform,
            content: self.content,
            items: self.items,
            sequences: self.sequences,
        })
    }
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    write_u64(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

fn read_str(r: &mut impl Read) -> Result<String, DataError> {
    let len = read_u64(r)? as usize;
    if len > 1 << 16 {
        return Err(DataError::Format("implausible string length".into()));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| DataError::Format("non-utf8 string".into()))
}

fn write_f32s(w: &mut impl Write, v: &[f32]) -> io::Result<()> {
    write_u64(w, v.len() as u64)?;
    for &x in v {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn read_f32s(r: &mut impl Read) -> Result<Vec<f32>, DataError> {
    let len = read_u64(r)? as usize;
    if len > 1 << 24 {
        return Err(DataError::Format("implausible float array".into()));
    }
    let mut out = Vec::with_capacity(len);
    let mut b = [0u8; 4];
    for _ in 0..len {
        r.read_exact(&mut b)?;
        out.push(f32::from_le_bytes(b));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{build_dataset, DatasetId, Scale};
    use crate::world::{World, WorldConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("pmm_data_io_{name}_{}", std::process::id()))
    }

    #[test]
    fn dataset_roundtrips_exactly() {
        let world = World::new(WorldConfig::default());
        let ds = build_dataset(&world, DatasetId::BiliFood, Scale::Tiny, 42);
        let path = tmp("roundtrip");
        save_dataset(&ds, &path).unwrap();
        let back = load_dataset(&path).unwrap();
        assert_eq!(back.name, ds.name);
        assert_eq!(back.platform, ds.platform);
        assert_eq!(back.content, ds.content);
        assert_eq!(back.sequences, ds.sequences);
        assert_eq!(back.items.len(), ds.items.len());
        for (a, b) in back.items.iter().zip(&ds.items) {
            assert_eq!(a.tokens, b.tokens);
            assert_eq!(a.patches, b.patches);
            assert_eq!(a.category, b.category);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_file_rejected() {
        let path = tmp("corrupt");
        std::fs::write(&path, b"garbagegarbage").unwrap();
        assert!(matches!(load_dataset(&path), Err(DataError::Format(_))));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn builder_validates_and_pads() {
        let spec = ContentSpec {
            vocab: 50,
            text_len: 6,
            n_patches: 2,
            patch_dim: 3,
        };
        let mut b = DatasetBuilder::new("ext", Platform::Amazon, spec);
        let i0 = b.add_item(&[1, 2, 3], &[0.0; 6]).unwrap();
        assert_eq!(i0, 0);
        // Padded to text_len.
        assert!(b.add_item(&[1; 7], &[0.0; 6]).is_err(), "too-long text");
        assert!(b.add_item(&[99], &[0.0; 6]).is_err(), "token out of vocab");
        assert!(b.add_item(&[1], &[0.0; 5]).is_err(), "wrong patch size");
        let i1 = b.add_item(&[4], &[1.0; 6]).unwrap();
        b.add_sequence(&[i0, i1, i0]).unwrap();
        assert!(b.add_sequence(&[7]).is_err(), "unknown item");
        let ds = b.build().unwrap();
        assert_eq!(ds.items[0].tokens.len(), 6);
        assert_eq!(ds.sequences, vec![vec![0, 1, 0]]);
    }

    #[test]
    fn built_dataset_trains_a_model() {
        // External data with zero latents must still train (latents are
        // generator-internal).
        let spec = ContentSpec {
            vocab: 30,
            text_len: 4,
            n_patches: 2,
            patch_dim: 3,
        };
        let mut b = DatasetBuilder::new("ext", Platform::Hm, spec);
        for i in 0..12usize {
            let toks = [i % 30, (i * 7) % 30];
            let patches: Vec<f32> = (0..6).map(|j| ((i + j) % 5) as f32 / 5.0).collect();
            b.add_item(&toks, &patches).unwrap();
        }
        for u in 0..8usize {
            let seq: Vec<usize> = (0..5).map(|t| (u + t * 3) % 12).collect();
            b.add_sequence(&seq).unwrap();
        }
        let ds = b.build().unwrap();
        let stats = ds.stats();
        assert_eq!(stats.users, 8);
        assert_eq!(stats.items, 12);
    }

    #[test]
    fn injected_io_failure_is_retried_transparently() {
        let _g = pmm_fault::test_guard();
        let world = World::new(WorldConfig::default());
        let ds = build_dataset(&world, DatasetId::KwaiFood, Scale::Tiny, 42);
        let path = tmp("retry");
        save_dataset(&ds, &path).unwrap();
        pmm_fault::install(pmm_fault::FaultPlan::parse("io@0").unwrap());
        let back = load_dataset(&path);
        pmm_fault::clear();
        let back = back.expect("one injected IO failure must be absorbed by retry");
        assert_eq!(back.sequences, ds.sequences);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_builder_is_an_error() {
        let spec = ContentSpec {
            vocab: 10,
            text_len: 2,
            n_patches: 1,
            patch_dim: 2,
        };
        assert!(DatasetBuilder::new("e", Platform::Hm, spec).build().is_err());
    }
}
