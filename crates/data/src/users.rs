//! User simulation: preference mixtures, Markov category walks, Zipf
//! item popularity and interaction noise.

use crate::style::Platform;
use crate::world::{sample_categorical, Item, World};
use rand::rngs::StdRng;
use rand::Rng;

/// Specification of one generated interaction log.
#[derive(Debug, Clone)]
pub struct GeneratorSpec {
    /// Platform whose style and category coverage apply.
    pub platform: Platform,
    /// Restrict to these categories (`None` = the platform's full set).
    /// Targets like `Bili_Food` use a single-category restriction.
    pub categories: Option<Vec<usize>>,
    /// Number of users to simulate.
    pub n_users: usize,
    /// Number of items in the corpus.
    pub n_items: usize,
    /// Minimum/maximum raw sequence length (before filtering).
    pub min_len: usize,
    /// Maximum raw sequence length.
    pub max_len: usize,
    /// Zipf exponent for item popularity.
    pub zipf_s: f32,
}

/// Generates the item corpus and raw user sequences for a spec.
pub struct SequenceGenerator<'w> {
    world: &'w World,
    spec: GeneratorSpec,
}

impl<'w> SequenceGenerator<'w> {
    /// Creates a generator over `world`.
    pub fn new(world: &'w World, spec: GeneratorSpec) -> Self {
        SequenceGenerator { world, spec }
    }

    /// Active category set.
    fn categories(&self) -> Vec<usize> {
        self.spec
            .categories
            .clone()
            .unwrap_or_else(|| self.spec.platform.categories().to_vec())
    }

    /// Generates the item corpus: categories round-robin weighted by a
    /// mild skew, content per the platform style.
    pub fn items(&self, rng: &mut StdRng) -> Vec<Item> {
        let style = self.spec.platform.style();
        let cats = self.categories();
        (0..self.spec.n_items)
            .map(|i| {
                let c = cats[i % cats.len()];
                self.world.sample_item(c, &style, rng)
            })
            .collect()
    }

    /// Generates raw user sequences over `items` (indices into the
    /// corpus). Sequences interleave the universal category Markov walk
    /// with Zipf-popular, taste-aligned item choices plus platform
    /// interaction noise.
    pub fn sequences(&self, items: &[Item], rng: &mut StdRng) -> Vec<Vec<usize>> {
        let style = self.spec.platform.style();
        let cats = self.categories();
        let k_all = self.world.cfg.n_categories;
        // Zipf popularity by corpus order (rank = item id).
        let zipf_all: Vec<f32> = (0..items.len())
            .map(|rank| 1.0 / ((rank + 1) as f32).powf(self.spec.zipf_s))
            .collect();

        (0..self.spec.n_users)
            .map(|_| {
                // Preference mixture over the active categories.
                let mut pref = vec![0.0f32; k_all];
                for &c in &cats {
                    pref[c] = 0.2 + rng.random::<f32>();
                }
                // Taste vector in latent space biases item choice.
                let taste: Vec<f32> = (0..self.world.cfg.latent_dim)
                    .map(|_| rng.random_range(-1.0..1.0))
                    .collect();
                let len = rng.random_range(self.spec.min_len..=self.spec.max_len);
                let mut seq: Vec<usize> = Vec::with_capacity(len);
                for _ in 0..len {
                    let item = if rng.random::<f32>() < style.interaction_noise {
                        // Noise interaction: uniformly random item.
                        rng.random_range(0..items.len())
                    } else {
                        // The universal transition pattern: after an
                        // item with latent u the user is drawn towards
                        // T(u), where T is the world's global latent
                        // field. Category-level transitions (Fig. 1)
                        // emerge from T acting on the clustered latent
                        // space; there is no separate category chain, so
                        // the field is the one signal that transfers
                        // across platforms. A content model pre-trained
                        // on any platform learns T and applies it to
                        // unseen items; an ID model cannot.
                        let drift = seq
                            .last()
                            .map(|&p| self.world.latent_drift(&items[p].latent));
                        let weights: Vec<f32> = items
                            .iter()
                            .zip(&zipf_all)
                            .map(|(item, &z)| {
                                let cand = &item.latent;
                                let taste_aff: f32 =
                                    cand.iter().zip(&taste).map(|(&a, &b)| a * b).sum();
                                let field: f32 = drift
                                    .as_ref()
                                    .map(|d| cand.iter().zip(d).map(|(&a, &b)| a * b).sum())
                                    .unwrap_or(0.0);
                                pref[item.category] * z * (0.5 * taste_aff + 7.0 * field).exp()
                            })
                            .collect();
                        sample_categorical(&weights, rng)
                    };
                    seq.push(item);
                }
                seq
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use rand::SeedableRng;

    fn spec(platform: Platform) -> GeneratorSpec {
        GeneratorSpec {
            platform,
            categories: None,
            n_users: 50,
            n_items: 40,
            min_len: 5,
            max_len: 12,
            zipf_s: 1.0,
        }
    }

    #[test]
    fn corpus_covers_platform_categories() {
        let world = World::new(WorldConfig::default());
        let generator = SequenceGenerator::new(&world, spec(Platform::Bili));
        let mut rng = StdRng::seed_from_u64(0);
        let items = generator.items(&mut rng);
        assert_eq!(items.len(), 40);
        for item in &items {
            assert!(Platform::Bili.categories().contains(&item.category));
        }
    }

    #[test]
    fn category_restriction_is_respected() {
        let world = World::new(WorldConfig::default());
        let mut s = spec(Platform::Kwai);
        s.categories = Some(vec![1]);
        let generator = SequenceGenerator::new(&world, s);
        let mut rng = StdRng::seed_from_u64(0);
        let items = generator.items(&mut rng);
        assert!(items.iter().all(|i| i.category == 1));
    }

    #[test]
    fn sequences_have_requested_lengths_and_valid_ids() {
        let world = World::new(WorldConfig::default());
        let generator = SequenceGenerator::new(&world, spec(Platform::Hm));
        let mut rng = StdRng::seed_from_u64(1);
        let items = generator.items(&mut rng);
        let seqs = generator.sequences(&items, &mut rng);
        assert_eq!(seqs.len(), 50);
        for s in &seqs {
            assert!((5..=12).contains(&s.len()));
            assert!(s.iter().all(|&i| i < items.len()));
        }
    }

    #[test]
    fn popularity_is_zipf_skewed() {
        let world = World::new(WorldConfig::default());
        let mut sp = spec(Platform::Hm);
        sp.n_users = 300;
        let generator = SequenceGenerator::new(&world, sp);
        let mut rng = StdRng::seed_from_u64(2);
        let items = generator.items(&mut rng);
        let seqs = generator.sequences(&items, &mut rng);
        let mut counts = vec![0usize; items.len()];
        for s in &seqs {
            for &i in s {
                counts[i] += 1;
            }
        }
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top_share: usize = sorted[..items.len() / 5].iter().sum();
        let total: usize = sorted.iter().sum();
        assert!(
            top_share as f32 > 0.3 * total as f32,
            "top 20% of items should take >30% of interactions ({top_share}/{total})"
        );
    }

    #[test]
    fn transitions_follow_universal_pattern() {
        // Empirical category-transition frequencies should correlate
        // with the world matrix (self-loops dominate).
        let world = World::new(WorldConfig::default());
        let mut sp = spec(Platform::Bili);
        sp.n_users = 400;
        sp.max_len = 15;
        let generator = SequenceGenerator::new(&world, sp);
        let mut rng = StdRng::seed_from_u64(3);
        let items = generator.items(&mut rng);
        let seqs = generator.sequences(&items, &mut rng);
        let mut self_loops = 0usize;
        let mut total = 0usize;
        for s in &seqs {
            for w in s.windows(2) {
                total += 1;
                if items[w[0]].category == items[w[1]].category {
                    self_loops += 1;
                }
            }
        }
        let rate = self_loops as f32 / total as f32;
        // Universal matrix has 0.5 self-loop (before preference mixing
        // and noise); empirical should clearly exceed uniform (1/3).
        assert!(rate > 0.38, "self-loop rate {rate}");
    }
}
