//! Synthetic explicit ratings on top of an interaction dataset.
//!
//! The paper's conclusion names *rating prediction* as a future task
//! for PMMRec; this module supplies the data side. Ratings are a
//! content-grounded function of the item's latent (a world-level
//! quality direction) plus a per-user bias and observation noise, so a
//! content model can predict them for unseen items while a pure ID
//! model cannot.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Explicit ratings aligned with `dataset.sequences`:
/// `ratings[u][t]` rates `dataset.sequences[u][t]`, in `[1.0, 5.0]`.
#[derive(Debug, Clone)]
pub struct Ratings {
    /// Per-user, per-position ratings.
    pub values: Vec<Vec<f32>>,
}

/// Generates ratings for every interaction of the dataset.
///
/// `rating(u, i) = clamp(3 + 1.6 * q · latent_i + bias_u + noise, 1, 5)`
/// rounded to half-star granularity, where `q` is a world-level
/// "quality direction" (some content is just better made) and `bias_u`
/// a per-user offset. The quality component is a pure function of item
/// content, so a content-based model predicts it for items with no
/// rating history — the property the extension demonstrates.
pub fn synthesize_ratings(dataset: &Dataset, seed: u64) -> Ratings {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5A71);
    let m = dataset.items.first().map_or(0, |i| i.latent.len());
    let mut quality: Vec<f32> = (0..m).map(|_| rng.random_range(-1.0..1.0)).collect();
    let qn = quality.iter().map(|&q| q * q).sum::<f32>().sqrt().max(1e-6);
    quality.iter_mut().for_each(|q| *q /= qn);
    let values = dataset
        .sequences
        .iter()
        .map(|seq| {
            let bias: f32 = 0.4 * rng.random_range(-1.0..1.0f32);
            seq.iter()
                .map(|&item| {
                    let q: f32 = dataset.items[item]
                        .latent
                        .iter()
                        .zip(&quality)
                        .map(|(&a, &b)| a * b)
                        .sum();
                    let noisy = 3.0 + 1.6 * q + bias + 0.25 * rng.random_range(-1.0..1.0f32);
                    (noisy.clamp(1.0, 5.0) * 2.0).round() / 2.0
                })
                .collect()
        })
        .collect();
    Ratings { values }
}

impl Ratings {
    /// Flattens into `(prefix, item, rating)` training triples: each
    /// rated interaction with at least one preceding item.
    pub fn triples<'a>(&'a self, dataset: &'a Dataset) -> Vec<(&'a [usize], usize, f32)> {
        let mut out = Vec::new();
        for (u, seq) in dataset.sequences.iter().enumerate() {
            for t in 1..seq.len() {
                out.push((&seq[..t], seq[t], self.values[u][t]));
            }
        }
        out
    }

    /// Global mean rating (the bias-only baseline for RMSE comparison).
    pub fn global_mean(&self) -> f32 {
        let (mut sum, mut n) = (0.0f32, 0usize);
        for row in &self.values {
            sum += row.iter().sum::<f32>();
            n += row.len();
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{build_dataset, DatasetId, Scale};
    use crate::world::{World, WorldConfig};

    fn ds() -> Dataset {
        let world = World::new(WorldConfig::default());
        build_dataset(&world, DatasetId::AmazonShoes, Scale::Tiny, 42)
    }

    #[test]
    fn ratings_align_with_sequences_and_stay_in_range() {
        let d = ds();
        let r = synthesize_ratings(&d, 7);
        assert_eq!(r.values.len(), d.sequences.len());
        for (seq, row) in d.sequences.iter().zip(&r.values) {
            assert_eq!(seq.len(), row.len());
            assert!(row.iter().all(|&v| (1.0..=5.0).contains(&v)));
            // Half-star granularity.
            assert!(row.iter().all(|&v| (v * 2.0).fract() == 0.0));
        }
    }

    #[test]
    fn ratings_are_seed_deterministic() {
        let d = ds();
        let a = synthesize_ratings(&d, 7);
        let b = synthesize_ratings(&d, 7);
        assert_eq!(a.values, b.values);
        let c = synthesize_ratings(&d, 8);
        assert_ne!(a.values, c.values);
    }

    #[test]
    fn ratings_depend_on_item_content() {
        // The same item rated by the same user twice gets the same
        // deterministic affinity, so intra-user variance over repeated
        // items is bounded by the noise term.
        let d = ds();
        let r = synthesize_ratings(&d, 7);
        for (u, seq) in d.sequences.iter().enumerate() {
            for i in 0..seq.len() {
                for j in (i + 1)..seq.len() {
                    if seq[i] == seq[j] {
                        let diff = (r.values[u][i] - r.values[u][j]).abs();
                        assert!(diff <= 1.0, "same item rated {diff} apart");
                    }
                }
            }
        }
    }

    #[test]
    fn triples_have_nonempty_prefixes() {
        let d = ds();
        let r = synthesize_ratings(&d, 7);
        let triples = r.triples(&d);
        let expected: usize = d.sequences.iter().map(|s| s.len() - 1).sum();
        assert_eq!(triples.len(), expected);
        assert!(triples.iter().all(|(p, _, _)| !p.is_empty()));
    }

    #[test]
    fn global_mean_is_central() {
        let d = ds();
        let r = synthesize_ratings(&d, 7);
        let mean = r.global_mean();
        assert!((1.5..=4.5).contains(&mean), "mean {mean}");
    }
}
