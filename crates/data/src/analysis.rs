//! Dataset analysis utilities: popularity concentration, transition
//! structure and cross-dataset content similarity — the diagnostics
//! used to calibrate the world model (DESIGN.md §6) and to sanity-check
//! external datasets ingested through [`crate::io::DatasetBuilder`].

use crate::dataset::Dataset;
use std::collections::HashMap;

/// Gini coefficient of item popularity (0 = perfectly uniform,
/// → 1 = all interactions on one item).
pub fn popularity_gini(dataset: &Dataset) -> f32 {
    let mut counts = vec![0usize; dataset.items.len()];
    for s in &dataset.sequences {
        for &i in s {
            counts[i] += 1;
        }
    }
    gini(&counts.iter().map(|&c| c as f32).collect::<Vec<_>>())
}

/// Gini coefficient of arbitrary non-negative values.
pub fn gini(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f32> = values.to_vec();
    sorted.sort_by(f32::total_cmp);
    let n = sorted.len() as f32;
    let total: f32 = sorted.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let weighted: f32 = sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as f32 + 1.0) * v)
        .sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

/// Empirical category-transition matrix (row-stochastic, `[K, K]`).
///
/// Compare against [`crate::world::World::transitions`] to verify the
/// generated sequences follow the intended universal pattern.
pub fn category_transition_matrix(dataset: &Dataset, n_categories: usize) -> Vec<Vec<f32>> {
    let mut counts = vec![vec![0.0f32; n_categories]; n_categories];
    for s in &dataset.sequences {
        for w in s.windows(2) {
            let a = dataset.items[w[0]].category;
            let b = dataset.items[w[1]].category;
            counts[a][b] += 1.0;
        }
    }
    for row in counts.iter_mut() {
        let total: f32 = row.iter().sum();
        if total > 0.0 {
            row.iter_mut().for_each(|v| *v /= total);
        }
    }
    counts
}

/// Shannon entropy (bits) of the empirical next-item distribution per
/// previous item, averaged over previous items with at least
/// `min_support` observed transitions. Lower entropy = more predictable
/// sequences.
pub fn transition_entropy(dataset: &Dataset, min_support: usize) -> f32 {
    let mut next: HashMap<usize, HashMap<usize, usize>> = HashMap::new();
    for s in &dataset.sequences {
        for w in s.windows(2) {
            *next.entry(w[0]).or_default().entry(w[1]).or_default() += 1;
        }
    }
    // Float accumulation order must not depend on hash order, or the
    // reported entropy drifts in the last bits between runs.
    // pmm-audit: allow(nondet) — order normalised by the sort below
    let mut prev_items: Vec<usize> = next.keys().copied().collect();
    prev_items.sort_unstable();
    let mut total_entropy = 0.0f32;
    let mut contributing = 0usize;
    for prev in prev_items {
        let dist = &next[&prev];
        let support: usize = dist.values().sum();
        if support < min_support {
            continue;
        }
        let mut counts: Vec<(usize, usize)> =
            dist.iter().map(|(&item, &c)| (item, c)).collect();
        counts.sort_unstable();
        let mut h = 0.0f32;
        for &(_, c) in &counts {
            let p = c as f32 / support as f32;
            h -= p * p.log2();
        }
        total_entropy += h;
        contributing += 1;
    }
    if contributing == 0 {
        0.0
    } else {
        total_entropy / contributing as f32
    }
}

/// Mean cosine similarity between the average latent of two datasets'
/// items — a cheap measure of content-domain overlap (e.g. Bili_Food vs
/// Kwai_Food should exceed Bili_Food vs HM_Shoes).
///
/// Defined only for *generated* datasets: items ingested through
/// [`crate::io::DatasetBuilder`] carry no ground-truth latent, and the
/// similarity degenerates to `0.0` for them.
pub fn content_similarity(a: &Dataset, b: &Dataset) -> f32 {
    let mean = |d: &Dataset| {
        let m = d.items.first().map_or(0, |i| i.latent.len());
        let mut acc = vec![0.0f32; m];
        for item in &d.items {
            for (x, &l) in acc.iter_mut().zip(&item.latent) {
                *x += l / d.items.len() as f32;
            }
        }
        acc
    };
    let (ma, mb) = (mean(a), mean(b));
    let dot: f32 = ma.iter().zip(&mb).map(|(&x, &y)| x * y).sum();
    let na: f32 = ma.iter().map(|&x| x * x).sum::<f32>().sqrt();
    let nb: f32 = mb.iter().map(|&x| x * x).sum::<f32>().sqrt();
    if na * nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{build_dataset, DatasetId, Scale};
    use crate::world::{World, WorldConfig};

    #[test]
    fn gini_bounds_and_extremes() {
        assert_eq!(gini(&[]), 0.0);
        assert!(gini(&[1.0, 1.0, 1.0, 1.0]).abs() < 1e-6, "uniform = 0");
        let concentrated = gini(&[0.0, 0.0, 0.0, 100.0]);
        assert!(concentrated > 0.7, "concentrated {concentrated}");
        let g = gini(&[5.0, 1.0, 3.0, 2.0]);
        assert!((0.0..=1.0).contains(&g));
    }

    #[test]
    fn popularity_is_moderately_skewed_by_design() {
        let world = World::new(WorldConfig::default());
        let ds = build_dataset(&world, DatasetId::Hm, Scale::Tiny, 42);
        let g = popularity_gini(&ds);
        // Zipf 0.35 with affinity mixing: skew present but not extreme.
        assert!((0.05..0.8).contains(&g), "gini {g}");
    }

    #[test]
    fn empirical_transitions_are_row_stochastic() {
        let world = World::new(WorldConfig::default());
        let ds = build_dataset(&world, DatasetId::Bili, Scale::Tiny, 42);
        let t = category_transition_matrix(&ds, world.cfg.n_categories);
        for row in &t {
            let s: f32 = row.iter().sum();
            assert!(s == 0.0 || (s - 1.0).abs() < 1e-4);
        }
        // Bili covers categories 0..3 only: rows 3-4 are empty.
        assert!(t[3].iter().sum::<f32>() == 0.0);
    }

    #[test]
    fn transition_entropy_is_finite_and_positive() {
        let world = World::new(WorldConfig::default());
        let ds = build_dataset(&world, DatasetId::Kwai, Scale::Tiny, 42);
        let h = transition_entropy(&ds, 2);
        assert!(h >= 0.0 && h.is_finite());
    }

    #[test]
    fn same_category_datasets_are_more_similar() {
        let world = World::new(WorldConfig::default());
        let bili_food = build_dataset(&world, DatasetId::BiliFood, Scale::Tiny, 42);
        let kwai_food = build_dataset(&world, DatasetId::KwaiFood, Scale::Tiny, 42);
        let hm_shoes = build_dataset(&world, DatasetId::HmShoes, Scale::Tiny, 42);
        let same = content_similarity(&bili_food, &kwai_food);
        let diff = content_similarity(&bili_food, &hm_shoes);
        assert!(
            same > diff,
            "cross-platform same-category ({same:.3}) should exceed cross-category ({diff:.3})"
        );
    }
}
