//! Quickstart: train PMMRec on one synthetic dataset and print metrics.
//!
//! ```text
//! cargo run --release -p pmm-examples --bin quickstart
//! ```
//!
//! Walks through the whole pipeline: build the shared world, generate a
//! dataset, split it leave-one-out, train PMMRec with early stopping,
//! and evaluate full-catalogue ranking metrics.

use pmm_data::registry::{build_dataset, DatasetId, Scale};
use pmm_data::split::SplitDataset;
use pmm_data::world::{World, WorldConfig};
use pmm_eval::{train_model, TrainConfig};
use pmmrec::{PmmRec, PmmRecConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. The world: shared latent categories + the universal transition
    //    matrix every platform obeys.
    let world = World::new(WorldConfig::default());

    // 2. A dataset: the HM_Clothes target slice, 5-core filtered.
    let dataset = build_dataset(&world, DatasetId::HmClothes, Scale::Paper, 42);
    let stats = dataset.stats();
    println!(
        "dataset {}: {} users, {} items, {} actions (avg len {:.1})",
        dataset.name, stats.users, stats.items, stats.actions, stats.avg_length
    );

    // 3. Leave-one-out split (train / valid / test).
    let split = SplitDataset::new(dataset);

    // 4. PMMRec with default hyper-parameters. No item IDs anywhere:
    //    the model sees only each item's text tokens and image patches.
    let mut rng = StdRng::seed_from_u64(42);
    let mut model = PmmRec::new(PmmRecConfig::default(), &split.dataset, &mut rng);
    println!("model: {} parameters", model.n_params());

    // 5. Train with early stopping on validation NDCG@10.
    let cfg = TrainConfig {
        max_epochs: 12,
        patience: 2,
        eval_every: 1,
        log_level: pmm_obs::Level::Info,
        ..TrainConfig::default()
    };
    let result = train_model(&mut model, &split, &cfg, &mut rng);

    println!("\nbest epoch: {}", result.best_epoch);
    println!("validation: {}", result.valid);
    println!("test:       {}", result.test);
}
