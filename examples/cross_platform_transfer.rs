//! Cross-platform transfer: pre-train PMMRec on a short-video platform
//! (Bili: cluttered posters, noisy logs) and fine-tune on an e-commerce
//! target (HM_Shoes: clean product shots) — the paper's headline
//! scenario of Figure 1, exercising checkpointing and the plug-and-play
//! transfer settings.
//!
//! ```text
//! cargo run --release -p pmm-examples --bin cross_platform_transfer
//! ```

use pmm_data::registry::{build_dataset, DatasetId, Scale};
use pmm_data::split::SplitDataset;
use pmm_data::world::{World, WorldConfig};
use pmm_eval::{train_model, TrainConfig};
use pmmrec::{PmmRec, PmmRecConfig, TransferSetting};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let world = World::new(WorldConfig::default());
    let mut rng = StdRng::seed_from_u64(7);
    let cfg = TrainConfig {
        max_epochs: 10,
        patience: 2,
        eval_every: 1,
        ..TrainConfig::default()
    };

    // --- Pre-train on the source platform with all four objectives ---
    let source = SplitDataset::new(build_dataset(&world, DatasetId::Bili, Scale::Paper, 42));
    println!("pre-training on {} ({} users)…", source.dataset.name, source.train.len());
    let mut pretrained = PmmRec::new(PmmRecConfig::default(), &source.dataset, &mut rng);
    pretrained.set_pretraining(true); // DAP + NICL + NID + RCL
    let src_result = train_model(&mut pretrained, &source, &cfg, &mut rng);
    println!("source test: {}", src_result.test);
    let ckpt = std::env::temp_dir().join("pmm_example_bili.ckpt");
    pretrained.save(&ckpt).expect("save checkpoint");

    // --- Fine-tune on the cross-platform target ---
    let target = SplitDataset::new(build_dataset(&world, DatasetId::HmShoes, Scale::Paper, 42));
    println!("\nfine-tuning on {} ({} users)…", target.dataset.name, target.train.len());

    // From scratch, for reference.
    let mut scratch = PmmRec::new(PmmRecConfig::default(), &target.dataset, &mut rng);
    let scratch_result = train_model(&mut scratch, &target, &cfg, &mut rng);
    println!("from scratch:      {}", scratch_result.test);

    // With each transfer setting (note: items and IDs are completely
    // disjoint between Bili and HM — only content knowledge moves).
    for setting in [
        TransferSetting::UserEncoder,
        TransferSetting::ItemEncoders,
        TransferSetting::Full,
    ] {
        let model_cfg = PmmRecConfig {
            modality: setting.modality(),
            ..PmmRecConfig::default()
        };
        let mut model = PmmRec::new(model_cfg, &target.dataset, &mut rng);
        let report = model.load_transfer(&ckpt, setting).expect("load transfer");
        let result = train_model(&mut model, &target, &cfg, &mut rng);
        println!(
            "{:<18} {} ({} tensors transferred)",
            format!("{}:", setting.label()),
            result.test,
            report.loaded.len()
        );
    }
    std::fs::remove_file(&ckpt).ok();
}
