//! Runnable examples for the PMMRec reproduction. See the `[[bin]]`
//! targets: `quickstart`, `cross_platform_transfer`,
//! `cold_start_rescue`, `modality_dropout`.
