//! Cold-start rescue: demonstrates why pure multi-modality matters
//! when items are new. An ID-based SASRec scores cold items with
//! untrained embeddings (near-random), while PMMRec reads their text
//! and image content and ranks them sensibly.
//!
//! ```text
//! cargo run --release -p pmm-examples --bin cold_start_rescue
//! ```

use pmm_baselines::sasrec;
use pmm_data::cold::{cold_items, cold_start_cases};
use pmm_data::registry::{build_dataset, DatasetId, Scale};
use pmm_data::split::{LeaveOneOut, SplitDataset};
use pmm_data::world::{World, WorldConfig};
use pmm_eval::{evaluate_cases, train_model, TrainConfig};
use pmmrec::{PmmRec, PmmRecConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let world = World::new(WorldConfig::default());
    let split = SplitDataset::new(build_dataset(&world, DatasetId::Amazon, Scale::Paper, 42));
    let mut rng = StdRng::seed_from_u64(11);

    // Identify cold items (rare in the training split) and build the
    // truncated evaluation cases that end in one.
    let threshold = 7;
    let cold = cold_items(&split, threshold);
    let cases: Vec<LeaveOneOut> = cold_start_cases(&split, threshold)
        .into_iter()
        .map(|c| LeaveOneOut { prefix: c.prefix, target: c.target })
        .collect();
    println!(
        "{}: {} cold items (<{} train occurrences), {} cold-start cases",
        split.dataset.name,
        cold.len(),
        threshold,
        cases.len()
    );
    if cases.is_empty() {
        println!("no cold cases at this scale; increase the threshold");
        return;
    }

    let cfg = TrainConfig {
        max_epochs: 10,
        patience: 2,
        eval_every: 1,
        ..TrainConfig::default()
    };

    // Train both models on the normal training split…
    let mut sas = sasrec::build(Default::default(), &split.dataset, &mut rng);
    let sas_overall = train_model(&mut sas, &split, &cfg, &mut rng);
    let mut pmm = PmmRec::new(PmmRecConfig::default(), &split.dataset, &mut rng);
    let pmm_overall = train_model(&mut pmm, &split, &cfg, &mut rng);

    // …then evaluate on cold-item cases only.
    let sas_cold = evaluate_cases(&sas, &cases);
    let pmm_cold = evaluate_cases(&pmm, &cases);

    println!("\n              overall test            cold items only");
    println!("SASRec (ID):  HR@10 {:5.2}              HR@10 {:5.2}", sas_overall.test.hr10(), sas_cold.hr10());
    println!("PMMRec:       HR@10 {:5.2}              HR@10 {:5.2}", pmm_overall.test.hr10(), pmm_cold.hr10());
    println!(
        "\nThe ID model collapses on cold items (its embeddings never trained);\n\
         the content model keeps ranking from text and image alone."
    );
}
