//! Modality dropout at deployment: pre-train PMMRec multi-modally,
//! then deploy on a target where only ONE modality is available
//! (text-only or vision-only), per Section III-E's single-modality
//! transfer settings.
//!
//! ```text
//! cargo run --release -p pmm-examples --bin modality_dropout
//! ```

use pmm_data::registry::{build_dataset, DatasetId, Scale};
use pmm_data::split::SplitDataset;
use pmm_data::world::{World, WorldConfig};
use pmm_eval::{train_model, TrainConfig};
use pmmrec::{Modality, PmmRec, PmmRecConfig, TransferSetting};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let world = World::new(WorldConfig::default());
    let mut rng = StdRng::seed_from_u64(23);
    let cfg = TrainConfig {
        max_epochs: 10,
        patience: 2,
        eval_every: 1,
        ..TrainConfig::default()
    };

    // Multi-modal pre-training on Kwai.
    let source = SplitDataset::new(build_dataset(&world, DatasetId::Kwai, Scale::Paper, 42));
    println!("pre-training multi-modally on {}…", source.dataset.name);
    let mut pretrained = PmmRec::new(PmmRecConfig::default(), &source.dataset, &mut rng);
    pretrained.set_pretraining(true);
    train_model(&mut pretrained, &source, &cfg, &mut rng);
    let ckpt = std::env::temp_dir().join("pmm_example_kwai.ckpt");
    pretrained.save(&ckpt).expect("save");

    // The downstream platform lost a modality.
    let target = SplitDataset::new(build_dataset(&world, DatasetId::KwaiCartoon, Scale::Paper, 42));
    println!("deploying on {} with degraded modalities:\n", target.dataset.name);

    for (label, setting, scratch_modality) in [
        ("text only", TransferSetting::TextOnly, Modality::TextOnly),
        ("vision only", TransferSetting::VisionOnly, Modality::VisionOnly),
    ] {
        // From scratch with the single modality.
        let scfg = PmmRecConfig { modality: scratch_modality, ..PmmRecConfig::default() };
        let mut scratch = PmmRec::new(scfg, &target.dataset, &mut rng);
        let scratch_m = train_model(&mut scratch, &target, &cfg, &mut rng).test;

        // Transferring the matching encoder + the user encoder.
        let tcfg = PmmRecConfig { modality: setting.modality(), ..PmmRecConfig::default() };
        let mut model = PmmRec::new(tcfg, &target.dataset, &mut rng);
        model.load_transfer(&ckpt, setting).expect("transfer");
        let transfer_m = train_model(&mut model, &target, &cfg, &mut rng).test;

        println!("{label:<12} scratch HR@10 {:5.2}  |  transferred HR@10 {:5.2}", scratch_m.hr10(), transfer_m.hr10());
    }
    println!("\nMulti-modal pre-training still pays off when deployment is single-modal.");
    std::fs::remove_file(&ckpt).ok();
}
