//! Rating prediction (the paper's future-work extension): train a
//! PMMRec backbone on implicit sequences, then probe it with a small
//! rating head on synthetic explicit ratings and compare against the
//! global-mean baseline.
//!
//! Uses a multi-category source dataset: single-category target slices
//! carry little item-quality variance in the backbone representations,
//! so the head's edge over the mean baseline shows most clearly here.
//!
//! ```text
//! cargo run --release -p pmm-examples --bin rating_prediction
//! ```

use pmm_data::ratings::synthesize_ratings;
use pmm_data::registry::{build_dataset, DatasetId, Scale};
use pmm_data::split::SplitDataset;
use pmm_data::world::{World, WorldConfig};
use pmm_eval::{train_model, TrainConfig};
use pmmrec::rating::rmse_mae;
use pmmrec::{PmmRec, PmmRecConfig, RatingData, RatingHead};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let world = World::new(WorldConfig::default());
    let ds = build_dataset(&world, DatasetId::Amazon, Scale::Paper, 42);
    let ratings = synthesize_ratings(&ds, 42);
    println!("{}: {} rated interactions, global mean {:.2}",
        ds.name, ratings.triples(&ds).len(), ratings.global_mean());

    // 1. Train the backbone on the implicit next-item task.
    let mut rng = StdRng::seed_from_u64(42);
    let split = SplitDataset::new(ds.clone());
    let mut backbone = PmmRec::new(PmmRecConfig::default(), &split.dataset, &mut rng);
    let cfg = TrainConfig { max_epochs: 16, patience: 3, eval_every: 2, ..TrainConfig::default() };
    let result = train_model(&mut backbone, &split, &cfg, &mut rng);
    println!("backbone test ranking: {}", result.test);

    // 2. Probe with a rating head (backbone frozen).
    let triples: Vec<(Vec<usize>, usize, f32)> = ratings
        .triples(&ds)
        .into_iter()
        .map(|(p, i, r)| (p.to_vec(), i, r))
        .collect();
    let mean = ratings.global_mean();
    let (train, test) = RatingData::new(triples).split_holdout(0.2);
    let mut head = RatingHead::new(backbone.config().d, 1e-2, &mut rng);
    for epoch in 1..=40 {
        let mse = head.train_epoch(&backbone, &train, &mut rng);
        if epoch % 10 == 0 {
            println!("head epoch {epoch:2}: train MSE {mse:.4}");
        }
    }

    // 3. Compare against predicting the global mean for everything.
    let (rmse, mae) = head.evaluate(&backbone, &test);
    let held_targets: Vec<f32> = test.triples().iter().map(|&(_, _, r)| r).collect();
    let baseline = vec![mean; held_targets.len()];
    let (base_rmse, base_mae) = rmse_mae(&baseline, &held_targets);
    println!("\ncontent head:          RMSE {rmse:.3}  MAE {mae:.3}");
    println!("global-mean baseline:  RMSE {base_rmse:.3}  MAE {base_mae:.3}");
    println!("\nThe head predicts item quality from content alone — the same property\nthat lets PMMRec rank cold items.");
}
