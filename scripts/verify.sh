#!/usr/bin/env bash
# Full local verification: release build, test suite, and lints.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

# The suite runs twice: sequential and multi-threaded kernel dispatch.
# Parallel kernels are bit-identical by construction, so both runs must
# pass with no test seeing a different result.
echo "==> cargo test -q (PMM_THREADS=1)"
PMM_THREADS=1 cargo test -q

echo "==> cargo test -q (PMM_THREADS=4)"
PMM_THREADS=4 cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> pmm-audit (workspace invariant lint)"
cargo run --release -q -p pmm-audit

echo "==> pmm-audit --fixtures (rule engine pinned against seeded violations)"
cargo run --release -q -p pmm-audit -- --fixtures

echo "==> pmm-audit --race (lock-order graph, guard-across-blocking, atomics orderings)"
cargo run --release -q -p pmm-audit -- --race

echo "==> pmm-audit --check must-fail (seeded lock-order cycle fixture must be caught)"
if cargo run --release -q -p pmm-audit -- --check crates/audit/fixtures/lock_order.rs; then
  echo "ERROR: race auditor passed a fixture with a seeded lock-order cycle"
  exit 1
fi

echo "==> thread-scaling smoke (kernels bit-identical across worker counts)"
cargo run --release -q -p pmm-bench --bin par_scaling

echo "==> kernel bench (tiled>=2x scalar at 256^3, dispatch-threshold guard, int8 HR@10 within 1%, >10% speedup regression vs recorded BENCH_kernel.json fails)"
cargo run --release -q -p pmm-bench --bin kernel_bench -- --gate

echo "==> chaos smoke (fault injection + pre-backward autograd-graph audit on every step)"
cargo run --release -q -p pmm-bench --bin chaos_smoke -- --scale tiny --epochs 3 --audit-graph

echo "==> serve chaos (scripted: shedding, ladder, deadlines, thread-count parity)"
cargo run --release -q -p pmm-bench --bin serve_chaos -- --scale tiny

echo "==> serve chaos smoke (custom fault plan: zero panics, tier-tagged responses)"
cargo run --release -q -p pmm-bench --bin serve_chaos -- --scale tiny \
  --fault-plan "err@0,slow@4,err@7,err@8,slow@13"

echo "==> trace smoke (causal chains, stage histograms, clean SLO gate, metrics exposition)"
cargo run --release -q -p pmm-bench --bin trace_smoke -- --scale tiny \
  --slo-gate --metrics BENCH_metrics.prom

echo "==> trace smoke chaos (injected stalls must blow the miss-rate budget and fail the gate)"
if cargo run --release -q -p pmm-bench --bin trace_smoke -- --scale tiny \
  --slo-gate --fault-plan "slow@0,slow@4,slow@8,slow@12,slow@16"; then
  echo "ERROR: SLO gate passed under a fault plan that must breach it"
  exit 1
fi

echo "==> serve load (open-loop arrivals; clean SLO gate must hold)"
cargo run --release -q -p pmm-bench --bin serve_load -- --scale tiny --slo-gate

echo "==> serve load chaos (worker panics + mid-run snapshot swap; supervision must keep the gate green)"
cargo run --release -q -p pmm-bench --bin serve_load -- --scale tiny \
  --slo-gate --fault-plan "panic@3,panic@9" --swap-at 12

echo "==> serve load gate (clean p99/throughput vs recorded BENCH_serve.json; >10% regression fails)"
cargo run --release -q -p pmm-bench --bin serve_load -- --scale tiny --slo-gate --gate

echo "==> ingest chaos (WAL kill-and-replay, delta serving bit-identical to cold build, shard quarantine + heal)"
cargo run --release -q -p pmm-bench --bin ingest_chaos -- --scale tiny

echo "==> ingest chaos must-fail (skipping replay loses acknowledged items; the gate must catch it)"
if cargo run --release -q -p pmm-bench --bin ingest_chaos -- --scale tiny \
  --fault-plan "wal_corrupt@0" --no-replay; then
  echo "ERROR: durability gate passed with replay disabled and a torn WAL"
  exit 1
fi

echo "==> verify OK"
