#!/usr/bin/env bash
# Full local verification: release build, test suite, and lints.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> chaos smoke (fault injection: NaN steps, checkpoint corruption, IO failure)"
cargo run --release -q -p pmm-bench --bin chaos_smoke -- --scale tiny --epochs 3

echo "==> verify OK"
