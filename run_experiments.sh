#!/bin/sh
# Regenerates every table and figure of the PMMRec paper.
# Usage: ./run_experiments.sh [extra flags passed to every binary]
set -e
FLAGS="$*"
for bin in table1_versatility_matrix table2_dataset_stats table3_source_performance \
           table4_transfer table5_versatility fig3_convergence \
           table6_single_source table7_cold_start table8_ablation \
           inspect_world noise_check; do
    echo "=== $bin ==="
    cargo run --release -q -p pmm-bench --bin "$bin" -- $FLAGS \
        > "results/$bin.txt" 2> "results/$bin.log"
    echo "--- done: $bin"
done
