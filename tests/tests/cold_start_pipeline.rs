//! Cold-start evaluation pipeline (Section IV-F2): the ID model's
//! embeddings for cold items are untrained, so a briefly trained
//! content model should not rank cold items worse.

use pmm_baselines::sasrec;
use pmm_data::cold::{cold_items, cold_start_cases};
use pmm_data::registry::{build_dataset, DatasetId, Scale};
use pmm_data::split::{LeaveOneOut, SplitDataset};
use pmm_data::world::{World, WorldConfig};
use pmm_eval::{evaluate_cases, SeqRecommender};
use pmmrec::{PmmRec, PmmRecConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn cold_cases_exist_and_both_model_families_score_them() {
    let world = World::new(WorldConfig::default());
    let split = SplitDataset::new(build_dataset(&world, DatasetId::Hm, Scale::Tiny, 42));
    // With 5-core filtering, a threshold just above the floor marks the
    // rare tail as cold.
    let threshold = 7;
    let cold = cold_items(&split, threshold);
    assert!(!cold.is_empty(), "no cold items at threshold {threshold}");
    let cases: Vec<LeaveOneOut> = cold_start_cases(&split, threshold)
        .into_iter()
        .map(|c| LeaveOneOut { prefix: c.prefix, target: c.target })
        .collect();
    assert!(!cases.is_empty());
    // Every case target is genuinely cold.
    for c in &cases {
        assert!(cold.contains(&c.target));
    }

    let mut rng = StdRng::seed_from_u64(3);
    let mut sas = sasrec::build(
        pmm_baselines::common::BaselineConfig {
            d: 16,
            heads: 2,
            layers: 1,
            batch_size: 8,
            max_len: 8,
            ..Default::default()
        },
        &split.dataset,
        &mut rng,
    );
    for _ in 0..3 {
        sas.train_epoch(&split.train, &mut rng);
    }
    let sas_cold = evaluate_cases(&sas, &cases);
    assert_eq!(sas_cold.cases, cases.len());

    let mut pmm = PmmRec::new(
        PmmRecConfig {
            d: 16,
            heads: 2,
            text_layers: 1,
            vision_layers: 1,
            user_layers: 1,
            batch_size: 8,
            max_len: 8,
            ..Default::default()
        },
        &split.dataset,
        &mut rng,
    );
    for _ in 0..3 {
        pmm.train_epoch(&split.train, &mut rng);
    }
    let pmm_cold = evaluate_cases(&pmm, &cases);
    assert_eq!(pmm_cold.cases, cases.len());
    // Both metric sets are valid percentages; the decisive comparison
    // runs at Paper scale in table7_cold_start.
    assert!(sas_cold.hr10() <= 100.0 && pmm_cold.hr10() <= 100.0);
}
