//! Integration coverage for the extension features: rating prediction,
//! top-k recommendation, baseline checkpoint transfer, dataset IO and
//! the significance tooling.

use pmm_baselines::{common::BaselineConfig, morec, unisrec, vqrec};
use pmm_data::ratings::synthesize_ratings;
use pmm_data::registry::{build_dataset, DatasetId, Scale};
use pmm_data::split::SplitDataset;
use pmm_data::world::{World, WorldConfig};
use pmm_eval::metrics::ranks_for_cases;
use pmm_eval::significance::{hit_indicators, paired_bootstrap};
use pmm_eval::SeqRecommender;
use pmmrec::{PmmRec, PmmRecConfig, RatingData, RatingHead};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_pmm_cfg() -> PmmRecConfig {
    PmmRecConfig {
        d: 16,
        heads: 2,
        text_layers: 1,
        vision_layers: 1,
        user_layers: 1,
        dropout: 0.0,
        batch_size: 8,
        max_len: 8,
        ..Default::default()
    }
}

#[test]
fn rating_pipeline_end_to_end() {
    let world = World::new(WorldConfig::default());
    let ds = build_dataset(&world, DatasetId::AmazonClothes, Scale::Tiny, 42);
    let ratings = synthesize_ratings(&ds, 42);
    let triples: Vec<(Vec<usize>, usize, f32)> = ratings
        .triples(&ds)
        .into_iter()
        .map(|(p, i, r)| (p.to_vec(), i, r))
        .collect();
    let (train, test) = RatingData::new(triples).split_holdout(0.25);

    let mut rng = StdRng::seed_from_u64(0);
    let mut backbone = PmmRec::new(tiny_pmm_cfg(), &ds, &mut rng);
    let split = SplitDataset::new(ds);
    backbone.train_epoch(&split.train, &mut rng);

    let mut head = RatingHead::new(16, 3e-3, &mut rng);
    let first = head.train_epoch(&backbone, &train, &mut rng);
    let mut last = first;
    for _ in 0..6 {
        last = head.train_epoch(&backbone, &train, &mut rng);
    }
    assert!(last < first, "rating MSE did not improve: {first} -> {last}");
    let (rmse, mae) = head.evaluate(&backbone, &test);
    assert!(rmse.is_finite() && mae.is_finite());
    assert!(mae <= rmse + 1e-4, "MAE must never exceed RMSE");
    // Predictions land in a sane rating range after training.
    let preds = head.predict(&backbone, test.triples());
    assert!(preds.iter().all(|&p| (-1.0..7.0).contains(&p)), "{preds:?}");
}

#[test]
fn recommendation_api_respects_catalogue() {
    let world = World::new(WorldConfig::default());
    let ds = build_dataset(&world, DatasetId::BiliCartoon, Scale::Tiny, 42);
    let n = ds.items.len();
    let mut rng = StdRng::seed_from_u64(1);
    let model = PmmRec::new(tiny_pmm_cfg(), &ds, &mut rng);
    let recs = model.recommend_top_k(&[0, 1], n + 100, false).unwrap();
    assert_eq!(recs.len(), n, "cannot recommend more items than exist");
    let reps = model.item_representations();
    assert_eq!(reps.shape()[0], n);
}

#[test]
fn transferable_baselines_roundtrip_checkpoints_across_datasets() {
    let world = World::new(WorldConfig::default());
    let source = build_dataset(&world, DatasetId::Kwai, Scale::Tiny, 42);
    let target = build_dataset(&world, DatasetId::KwaiMovie, Scale::Tiny, 42);
    let cfg = BaselineConfig {
        d: 16,
        heads: 2,
        layers: 1,
        batch_size: 8,
        max_len: 8,
        ..Default::default()
    };
    let src_split = SplitDataset::new(source.clone());
    let mut rng = StdRng::seed_from_u64(2);
    let dir = std::env::temp_dir();

    // UniSRec: all parameters are catalogue-independent.
    let mut uni = unisrec::build(cfg, &source, &mut rng);
    uni.train_epoch(&src_split.train, &mut rng);
    let p = dir.join(format!("ext_uni_{}.ckpt", std::process::id()));
    uni.save(&p).unwrap();
    let mut uni_t = unisrec::build(cfg, &target, &mut rng);
    let report = uni_t.load_filtered(&p, &[]).unwrap();
    assert!(report.missing.is_empty(), "unisrec missing {:?}", report.missing);
    std::fs::remove_file(&p).ok();

    // VQRec: codebook transfer via source centroids.
    let pq_src = vqrec::fit_quantizer(&source);
    let mut vq = vqrec::build_with_quantizer(cfg, &source, vqrec::recode_for(&pq_src, &source), &mut rng);
    vq.train_epoch(&src_split.train, &mut rng);
    let p = dir.join(format!("ext_vq_{}.ckpt", std::process::id()));
    vq.save(&p).unwrap();
    let target_pq = vqrec::recode_for(&pq_src, &target);
    let mut vq_t = vqrec::build_with_quantizer(cfg, &target, target_pq, &mut rng);
    let report = vq_t.load_filtered(&p, &[]).unwrap();
    assert!(report.missing.is_empty(), "vqrec missing {:?}", report.missing);
    std::fs::remove_file(&p).ok();

    // MoRec++: content encoders + user encoder transfer whole.
    let mut mo = morec::build(cfg, &source, &mut rng);
    mo.train_epoch(&src_split.train, &mut rng);
    let p = dir.join(format!("ext_mo_{}.ckpt", std::process::id()));
    mo.save(&p).unwrap();
    let mut mo_t = morec::build(cfg, &target, &mut rng);
    let report = mo_t.load_filtered(&p, &[]).unwrap();
    assert!(report.missing.is_empty(), "morec missing {:?}", report.missing);
    // The transferred model still trains and scores on the new corpus.
    let tgt_split = SplitDataset::new(target);
    let loss = mo_t.train_epoch(&tgt_split.train, &mut rng);
    assert!(loss.is_finite());
    std::fs::remove_file(&p).ok();
}

#[test]
fn bootstrap_on_identical_models_is_insignificant() {
    let world = World::new(WorldConfig::default());
    let ds = build_dataset(&world, DatasetId::HmShoes, Scale::Tiny, 42);
    let split = SplitDataset::new(ds);
    let mut rng = StdRng::seed_from_u64(3);
    let mut model = PmmRec::new(tiny_pmm_cfg(), &split.dataset, &mut rng);
    model.train_epoch(&split.train, &mut rng);
    let ranks = ranks_for_cases(&model, &split.test);
    let a = hit_indicators(&ranks, 10);
    let rep = paired_bootstrap(&a, &a, 200, &mut rng);
    assert!(!rep.significant(), "a model cannot significantly beat itself");
    assert_eq!(rep.observed_diff, 0.0);
}
