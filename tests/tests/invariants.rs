//! Property-based invariants spanning the data tooling and metrics.

use pmm_data::batch::Batch;
use pmm_data::corrupt::{corrupt_sequence, CorruptionConfig, NidLabel};
use pmm_eval::{evaluate_ranks, rank_of_target};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// NDCG can never exceed HR at the same cut-off: each hit adds at
    /// most 1 to both numerators.
    #[test]
    fn ndcg_bounded_by_hr(ranks in proptest::collection::vec(0.0f32..200.0, 1..50)) {
        let m = evaluate_ranks(&ranks);
        for k in 0..3 {
            prop_assert!(m.ndcg[k] <= m.hr[k] + 1e-4);
            prop_assert!(m.hr[k] <= 100.0 + 1e-4);
            prop_assert!(m.ndcg[k] >= 0.0);
        }
        // Monotone in k.
        prop_assert!(m.hr[0] <= m.hr[1] && m.hr[1] <= m.hr[2]);
    }

    /// The rank of the target is consistent: exactly the number of
    /// strictly-better items plus half the ties.
    #[test]
    fn rank_is_permutation_invariant_in_total(
        scores in proptest::collection::vec(-10.0f32..10.0, 2..40),
        target_seed in 0usize..1000,
    ) {
        let target = target_seed % scores.len();
        let r = rank_of_target(&scores, target);
        prop_assert!(r >= 0.0 && r <= (scores.len() - 1) as f32);
        // Boosting the target strictly can only improve (lower) its rank.
        let mut boosted = scores.clone();
        boosted[target] += 100.0;
        prop_assert!(rank_of_target(&boosted, target) <= r);
    }

    /// Corruption never changes length, keeps labels consistent with
    /// the edits, and respects approximate rates.
    #[test]
    fn corruption_invariants(
        seq in proptest::collection::vec(0usize..100, 2..60),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pool: Vec<usize> = (1000..1050).collect();
        let (out, labels) = corrupt_sequence(&seq, &pool, &CorruptionConfig::default(), &mut rng);
        prop_assert_eq!(out.len(), seq.len());
        prop_assert_eq!(labels.len(), seq.len());
        for (i, &l) in labels.iter().enumerate() {
            match l {
                NidLabel::Unchanged => prop_assert_eq!(out[i], seq[i]),
                NidLabel::Replaced => prop_assert!(pool.contains(&out[i])),
                NidLabel::Shuffled => {
                    // The moved-in value came from somewhere in the
                    // original sequence.
                    prop_assert!(seq.contains(&out[i]));
                }
            }
        }
        let replaced = labels.iter().filter(|&&l| l == NidLabel::Replaced).count();
        prop_assert!(replaced as f32 <= (seq.len() as f32 * 0.05).ceil());
    }

    /// Batching: padding never leaks into `lens`, items are preserved
    /// most-recent-first under truncation.
    #[test]
    fn batch_invariants(
        seqs in proptest::collection::vec(proptest::collection::vec(0usize..50, 1..20), 1..8),
        max_len in 1usize..12,
    ) {
        let refs: Vec<&[usize]> = seqs.iter().map(|s| s.as_slice()).collect();
        let batch = Batch::from_sequences(&refs, max_len);
        prop_assert_eq!(batch.b, seqs.len());
        prop_assert!(batch.l <= max_len);
        for (bi, s) in seqs.iter().enumerate() {
            let len = batch.lens[bi];
            prop_assert_eq!(len, s.len().min(max_len));
            let tail = &s[s.len() - len..];
            prop_assert_eq!(&batch.items[bi * batch.l..bi * batch.l + len], tail);
        }
    }
}
