//! All nine recommenders behave uniformly under the shared interface.

use pmm_baselines::{carca, common::BaselineConfig, fdsa, gru_rec, morec, nextitnet, sasrec, unisrec, vqrec};
use pmm_data::dataset::Dataset;
use pmm_data::registry::{build_dataset, DatasetId, Scale};
use pmm_data::split::SplitDataset;
use pmm_data::world::{World, WorldConfig};
use pmm_eval::{evaluate_cases, SeqRecommender};
use pmmrec::{PmmRec, PmmRecConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn all_models(ds: &Dataset, rng: &mut StdRng) -> Vec<Box<dyn SeqRecommender>> {
    let cfg = BaselineConfig {
        d: 16,
        heads: 2,
        layers: 1,
        dropout: 0.0,
        batch_size: 8,
        max_len: 8,
        ..Default::default()
    };
    let pmm_cfg = PmmRecConfig {
        d: 16,
        heads: 2,
        text_layers: 1,
        vision_layers: 1,
        user_layers: 1,
        dropout: 0.0,
        batch_size: 8,
        max_len: 8,
        ..Default::default()
    };
    vec![
        Box::new(gru_rec::build(cfg, ds, rng)),
        Box::new(nextitnet::build(cfg, ds, rng)),
        Box::new(sasrec::build(cfg, ds, rng)),
        Box::new(fdsa::build(cfg, ds, rng)),
        Box::new(carca::build(cfg, ds, rng)),
        Box::new(unisrec::build(cfg, ds, rng)),
        Box::new(vqrec::build(cfg, ds, rng)),
        Box::new(morec::build(cfg, ds, rng)),
        Box::new(PmmRec::new(pmm_cfg, ds, rng)),
    ]
}

#[test]
fn every_model_trains_and_scores_consistently() {
    let world = World::new(WorldConfig::default());
    let split = SplitDataset::new(build_dataset(&world, DatasetId::KwaiCartoon, Scale::Tiny, 42));
    let mut rng = StdRng::seed_from_u64(0);
    let mut names = std::collections::HashSet::new();
    for mut model in all_models(&split.dataset, &mut rng) {
        assert!(names.insert(model.name().to_string()), "duplicate name {}", model.name());
        assert_eq!(model.n_items(), split.n_items());
        let loss = model.train_epoch(&split.train, &mut rng);
        assert!(loss.is_finite() && loss > 0.0, "{}: loss {loss}", model.name());
        let scores = model.score_cases(&split.valid[..2.min(split.valid.len())]);
        for row in &scores {
            assert_eq!(row.len(), split.n_items(), "{}", model.name());
            assert!(row.iter().all(|s| s.is_finite()), "{}", model.name());
        }
        let m = evaluate_cases(model.as_ref(), &split.valid);
        assert_eq!(m.cases, split.valid.len(), "{}", model.name());
    }
    assert_eq!(names.len(), 9);
}

#[test]
fn id_models_cannot_score_beyond_catalogue_but_content_models_share_worlds() {
    // Two datasets from the same world have disjoint catalogues; models
    // are bound to their own corpus by construction.
    let world = World::new(WorldConfig::default());
    let a = build_dataset(&world, DatasetId::HmClothes, Scale::Tiny, 42);
    let b = build_dataset(&world, DatasetId::HmShoes, Scale::Tiny, 42);
    assert_eq!(a.content, b.content, "same world -> same content geometry");
    let mut rng = StdRng::seed_from_u64(0);
    let cfg = BaselineConfig { d: 16, heads: 2, layers: 1, ..Default::default() };
    let sas_a = sasrec::build(cfg, &a, &mut rng);
    let sas_b = sasrec::build(cfg, &b, &mut rng);
    assert_eq!(sas_a.n_items(), a.items.len());
    assert_eq!(sas_b.n_items(), b.items.len());
}
