//! End-to-end: world -> dataset -> split -> train -> evaluate ->
//! checkpoint -> reload -> identical scores.

use pmm_data::registry::{build_dataset, DatasetId, Scale};
use pmm_data::split::SplitDataset;
use pmm_data::world::{World, WorldConfig};
use pmm_eval::{evaluate_cases, train_model, SeqRecommender, TrainConfig};
use pmmrec::{PmmRec, PmmRecConfig, TransferSetting};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_cfg() -> PmmRecConfig {
    PmmRecConfig {
        d: 16,
        heads: 2,
        text_layers: 1,
        vision_layers: 1,
        user_layers: 1,
        dropout: 0.0,
        batch_size: 8,
        max_len: 8,
        ..Default::default()
    }
}

#[test]
fn full_pipeline_trains_evaluates_and_roundtrips() {
    let world = World::new(WorldConfig::default());
    let split = SplitDataset::new(build_dataset(&world, DatasetId::HmClothes, Scale::Tiny, 42));
    assert!(split.n_items() > 5);
    assert!(!split.valid.is_empty() && !split.test.is_empty());

    let mut rng = StdRng::seed_from_u64(42);
    let mut model = PmmRec::new(tiny_cfg(), &split.dataset, &mut rng);
    model.set_pretraining(true);
    let cfg = TrainConfig {
        max_epochs: 4,
        patience: 0,
        eval_every: 2,
        ..TrainConfig::default()
    };
    let result = train_model(&mut model, &split, &cfg, &mut rng);
    assert!(result.test.hr10().is_finite());
    assert!(result.curve.len() == 2);
    assert!(result.curve.iter().all(|p| p.loss.is_finite()));

    // Checkpoint roundtrip: reloaded model scores identically.
    let path = std::env::temp_dir().join(format!("e2e_{}.ckpt", std::process::id()));
    model.save(&path).unwrap();
    let mut rng2 = StdRng::seed_from_u64(7);
    let mut reloaded = PmmRec::new(tiny_cfg(), &split.dataset, &mut rng2);
    reloaded.load_transfer(&path, TransferSetting::Full).unwrap();
    let a = evaluate_cases(&model, &split.test);
    let b = evaluate_cases(&reloaded, &split.test);
    // Full transfer restores every scoring-relevant parameter, so the
    // ranking metrics must agree exactly.
    assert_eq!(a.hr, b.hr, "reloaded model ranks differently");
    std::fs::remove_file(path).ok();
}

#[test]
fn training_is_seed_reproducible() {
    let world = World::new(WorldConfig::default());
    let split = SplitDataset::new(build_dataset(&world, DatasetId::BiliFood, Scale::Tiny, 42));
    let run = || {
        let mut rng = StdRng::seed_from_u64(99);
        let mut model = PmmRec::new(tiny_cfg(), &split.dataset, &mut rng);
        let l1 = model.train_epoch(&split.train, &mut rng);
        let l2 = model.train_epoch(&split.train, &mut rng);
        let m = evaluate_cases(&model, &split.valid);
        (l1, l2, m.hr, m.ndcg)
    };
    assert_eq!(run(), run(), "identical seeds must give identical runs");
}

#[test]
fn different_seeds_give_different_models() {
    let world = World::new(WorldConfig::default());
    let split = SplitDataset::new(build_dataset(&world, DatasetId::BiliFood, Scale::Tiny, 42));
    let loss = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = PmmRec::new(tiny_cfg(), &split.dataset, &mut rng);
        model.train_epoch(&split.train, &mut rng)
    };
    assert_ne!(loss(1), loss(2));
}
