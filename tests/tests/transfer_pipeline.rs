//! Cross-dataset transfer: pre-train on a source, fine-tune on a
//! disjoint target under all five transfer settings (Section III-E).

use pmm_data::registry::{build_dataset, DatasetId, Scale};
use pmm_data::split::SplitDataset;
use pmm_data::world::{World, WorldConfig};
use pmm_eval::{evaluate_cases, SeqRecommender};
use pmmrec::transfer::components;
use pmmrec::{PmmRec, PmmRecConfig, TransferSetting};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cfg(modality: pmmrec::Modality) -> PmmRecConfig {
    PmmRecConfig {
        d: 16,
        heads: 2,
        text_layers: 1,
        vision_layers: 1,
        user_layers: 1,
        dropout: 0.0,
        batch_size: 8,
        max_len: 8,
        modality,
        ..Default::default()
    }
}

#[test]
fn all_five_transfer_settings_work_cross_dataset() {
    let world = World::new(WorldConfig::default());
    let source = SplitDataset::new(build_dataset(&world, DatasetId::Amazon, Scale::Tiny, 42));
    let target = SplitDataset::new(build_dataset(&world, DatasetId::AmazonShoes, Scale::Tiny, 42));

    // Source and target items are disjoint corpora (different sizes is
    // the cheap witness; contents are freshly sampled).
    assert_ne!(source.n_items(), 0);

    let mut rng = StdRng::seed_from_u64(0);
    let mut pretrained = PmmRec::new(cfg(pmmrec::Modality::Both), &source.dataset, &mut rng);
    pretrained.set_pretraining(true);
    pretrained.train_epoch(&source.train, &mut rng);
    let path = std::env::temp_dir().join(format!("transfer_it_{}.ckpt", std::process::id()));
    pretrained.save(&path).unwrap();

    for setting in TransferSetting::ALL {
        let mut model = PmmRec::new(cfg(setting.modality()), &target.dataset, &mut rng);
        let report = model.load_transfer(&path, setting).unwrap();
        assert!(!report.loaded.is_empty(), "{setting:?} loaded nothing");
        // The loaded set matches the setting's prefixes exactly.
        for name in &report.loaded {
            assert!(
                setting.prefixes().iter().any(|p| name.starts_with(p)),
                "{setting:?} loaded unexpected tensor {name}"
            );
        }
        // Fine-tune one epoch and evaluate.
        let loss = model.train_epoch(&target.train, &mut rng);
        assert!(loss.is_finite(), "{setting:?}");
        let m = evaluate_cases(&model, &target.valid);
        assert_eq!(m.cases, target.valid.len());
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn user_encoder_transfer_changes_only_user_component() {
    let world = World::new(WorldConfig::default());
    let source = SplitDataset::new(build_dataset(&world, DatasetId::Hm, Scale::Tiny, 42));
    let target = SplitDataset::new(build_dataset(&world, DatasetId::HmShoes, Scale::Tiny, 42));
    let mut rng = StdRng::seed_from_u64(1);
    let mut pre = PmmRec::new(cfg(pmmrec::Modality::Both), &source.dataset, &mut rng);
    pre.train_epoch(&source.train, &mut rng);
    let path = std::env::temp_dir().join(format!("transfer_ue_{}.ckpt", std::process::id()));
    pre.save(&path).unwrap();

    let mut model = PmmRec::new(cfg(pmmrec::Modality::Both), &target.dataset, &mut rng);
    let report = model.load_transfer(&path, TransferSetting::UserEncoder).unwrap();
    assert!(report.loaded.iter().all(|n| n.starts_with(components::USER)));
    assert!(report
        .loaded
        .iter()
        .any(|n| n.contains("trm.blocks.0")), "user encoder blocks must load");
    std::fs::remove_file(path).ok();
}

#[test]
fn text_only_model_ignores_missing_vision_weights() {
    // A text-only source checkpoint still serves a text-only target.
    let world = World::new(WorldConfig::default());
    let source = SplitDataset::new(build_dataset(&world, DatasetId::Kwai, Scale::Tiny, 42));
    let target = SplitDataset::new(build_dataset(&world, DatasetId::KwaiFood, Scale::Tiny, 42));
    let mut rng = StdRng::seed_from_u64(2);
    let mut pre = PmmRec::new(cfg(pmmrec::Modality::TextOnly), &source.dataset, &mut rng);
    pre.train_epoch(&source.train, &mut rng);
    let path = std::env::temp_dir().join(format!("transfer_to_{}.ckpt", std::process::id()));
    pre.save(&path).unwrap();

    let mut model = PmmRec::new(cfg(pmmrec::Modality::TextOnly), &target.dataset, &mut rng);
    let report = model.load_transfer(&path, TransferSetting::TextOnly).unwrap();
    assert!(report.loaded.iter().any(|n| n.starts_with(components::TEXT)));
    assert!(report.loaded.iter().any(|n| n.starts_with(components::USER)));
    let m = evaluate_cases(&model, &target.test);
    assert!(m.hr10() >= 0.0);
    std::fs::remove_file(path).ok();
}
