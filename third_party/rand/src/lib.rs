//! Offline stand-in for the slice of `rand` 0.9 used by this workspace.
//!
//! The build environment cannot reach a crates registry, so the
//! workspace vendors the API it actually calls: a seedable
//! deterministic generator (`StdRng`), standard-distribution sampling
//! (`Rng::random`), uniform range sampling (`Rng::random_range`), and
//! Fisher–Yates slice shuffling (`seq::SliceRandom::shuffle`).
//!
//! `StdRng` is SplitMix64: a 64-bit state mixed through two
//! multiply-xorshift rounds per output. It passes general statistical
//! batteries and is more than adequate for synthetic-data simulation
//! and weight init; it is **not** a cryptographic generator and its
//! streams differ from upstream rand's ChaCha12.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`: uniform over
    /// `[0, 1)` for floats, uniform over the whole domain for integers
    /// and `bool`.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range. Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable from their standard distribution.
pub trait StandardUniform: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full single-precision resolution.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i32, i64);

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                match ((hi - lo) as u64).checked_add(1) {
                    Some(span) => lo + (rng.next_u64() % span) as $t,
                    // lo..=MAX with lo == 0: the whole domain.
                    None => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
int_range!(usize, u32, u64);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t as StandardUniform>::sample(rng) * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

/// Generators constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

pub mod rngs {
    pub use crate::StdRng;
}

pub mod seq {
    use crate::Rng;

    /// Slice shuffling, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, back to front.
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_half_open_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo = 1.0f32;
        let mut hi = 0.0f32;
        for _ in 0..10_000 {
            let x: f32 = rng.random();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        // The stream actually spans the interval.
        assert!(lo < 0.01 && hi > 0.99);
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let u = rng.random_range(3usize..17);
            assert!((3..17).contains(&u));
            let v = rng.random_range(2usize..=5);
            assert!((2..=5).contains(&v));
            let f = rng.random_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn unsized_rng_is_usable() {
        fn take_dynish<R: Rng + ?Sized>(rng: &mut R) -> f32 {
            rng.random::<f32>()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let _ = take_dynish(&mut rng);
    }
}
