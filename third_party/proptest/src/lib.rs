//! Offline stand-in for the slice of `proptest` 1.x used by this
//! workspace: the `proptest!` macro, range and `collection::vec`
//! strategies, `prop_map`, and the `prop_assert*` macros.
//!
//! Semantics versus the real crate: each test runs `cases` iterations
//! with inputs drawn from a deterministic generator seeded from the
//! test's name, and a failing case panics immediately — there is no
//! shrinking, so failures reproduce exactly but are not minimized.

/// Deterministic SplitMix64 generator driving strategy sampling.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name so every test gets a stable, distinct
    /// stream (FNV-1a over the name bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Per-test configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod strategy {
    use super::TestRng;
    use std::ops::Range;

    /// A recipe for generating random values of `Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, map: f }
        }
    }

    /// Strategy adaptor produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.map)(self.source.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u32, u64, i32, i64);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Number of elements a [`vec`] strategy may produce: either an
    /// exact count or a half-open range, as in real proptest.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

/// Expands each contained `fn name(arg in strategy, ...) { .. }` into a
/// `#[test]`-style function running `cases` sampled iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => {
        assert!($($t)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => {
        assert_eq!($($t)*)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn named_streams_are_stable_and_distinct() {
        let mut a = crate::TestRng::from_name("alpha");
        let mut b = crate::TestRng::from_name("alpha");
        let mut c = crate::TestRng::from_name("beta");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_vecs_obey_size_and_bounds(
            v in crate::collection::vec(-2.0f32..2.0, 3..7),
            n in 1usize..5,
        ) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert!(v.iter().all(|x| (-2.0..2.0).contains(x)));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn prop_map_applies(x in (0usize..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(x < 20);
        }
    }
}
