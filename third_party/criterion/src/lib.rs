//! Offline stand-in for the slice of `criterion` 0.5 used by this
//! workspace's `harness = false` benchmarks.
//!
//! It keeps criterion's shape — a `Criterion` driver with builder
//! methods, `bench_function`, a `Bencher` whose `iter` times a
//! closure, and the `criterion_group!`/`criterion_main!` macros — but
//! replaces the statistical machinery with a plain warm-up phase
//! followed by timed samples, reporting min/mean/max nanoseconds per
//! iteration on stdout. No HTML reports, no regression analysis.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver. Builder methods mirror criterion's and are
/// honoured by the measurement loop.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Passed to each benchmark closure; `iter` runs and times the routine.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget is spent, measuring
        // the per-iteration cost to size the samples.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Split the measurement budget into `sample_size` samples of
        // roughly equal iteration counts (at least one iteration each).
        let budget = self.measurement_time.as_secs_f64();
        let total_iters = (budget / per_iter.max(1e-9)).ceil() as u64;
        let iters_per_sample = (total_iters / self.sample_size as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples_ns.push(ns);
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let n = self.samples_ns.len() as f64;
        let mean = self.samples_ns.iter().sum::<f64>() / n;
        let min = self.samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.samples_ns.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{id:<40} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
    }

    /// Mean nanoseconds per iteration of the last `iter` run. Not part
    /// of criterion's API; used by in-repo overhead assertions.
    pub fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_positive_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut observed = 0.0;
        c.bench_function("smoke/sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            observed = b.mean_ns();
        });
        assert!(observed > 0.0);
    }

    #[test]
    fn ns_formatting_picks_sane_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with(" s"));
    }
}
